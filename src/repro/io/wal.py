"""Write-ahead log: append-only, length-prefixed, checksummed records.

The segmented engine buffers inserts in memory and tombstones deletes
lazily, so everything since the last snapshot save dies with the
process.  The WAL closes that window the way every storage engine does:
each mutation is appended (and, per the sync policy, fsynced) *before*
it is applied, and recovery replays ``snapshot + WAL tail`` to
reconstruct exactly the pre-crash engine (see
:mod:`repro.exec.durable`).

**On-disk layout.**  A fixed header followed by a flat record stream::

    header : magic (8 bytes) | format u32 | generation u64     = 20 bytes
    record : payload-length u32 | crc32(payload) u32 | payload

Payloads are canonical JSON objects (sorted keys, no whitespace) with an
``"op"`` field.  The first record is always a ``config`` record carrying
the engine's constructor knobs, so a WAL is self-describing: recovery
can bootstrap an equivalent empty engine even when the snapshot file is
gone (possible only while ``generation == 0`` — see below).

**Generations and checkpoints.**  ``generation`` counts checkpoints.  A
checkpoint captures ``(generation, position)`` into the snapshot
envelope *before* :meth:`WriteAheadLog.reset` truncates the log to a
fresh header at ``generation + 1``.  Recovery aligns the two files by
that pair: same generation → replay from the recorded offset (the reset
never happened — nothing to double-apply); generation exactly one ahead
→ replay the whole log (the reset happened — the log holds only
post-checkpoint records); anything else → the files are not from the
same lineage and recovery fails loudly.

**Torn tails.**  A crash mid-append leaves a partial frame: a short
header, a short payload, or a checksum mismatch.  :func:`read_wal` stops
at the first invalid record and reports the dropped byte count;
:meth:`WriteAheadLog.open` truncates that tail away before appending
(appending after garbage would corrupt the log for the *next* reader).
Records behind a sync barrier — everything the chosen policy fsynced —
always parse, so an acknowledged-durable operation is never dropped.  A
checksum failure *before* the last sync barrier means fsynced data was
lost; the alignment checks in :mod:`repro.exec.durable` surface that as
a loud error rather than a silent truncation.

**Sync policies** (the durability/throughput dial):

* ``always`` — fsync after every append.  An operation is durable the
  moment ``append`` returns; one fsync per mutation.
* ``batch``  — group commit: fsync every ``group_size`` appends and on
  every explicit :meth:`sync` (checkpoints and close force one).  The
  classic throughput trade — a crash can lose at most the last
  unsynced group of *acknowledged-to-caller-but-unsynced* operations.
* ``none``   — never fsync on append (the OS flushes on its schedule);
  only checkpoints, :meth:`sync` and :meth:`close` force durability.

The appender is single-writer by design (the service serializes
mutations behind the :class:`~repro.service.manager.EngineManager`
write lock); an internal lock still guards it so misuse degrades to
serialization, not corruption.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.errors import SealError
from repro.io.atomic import atomic_write_bytes

#: Bump when the WAL header or frame layout changes incompatibly.
WAL_FORMAT = 1

#: Sync policies accepted by :class:`WriteAheadLog` (see module docs).
SYNC_POLICIES = ("always", "batch", "none")

#: Appends per fsync under the ``batch`` (group commit) policy.
DEFAULT_GROUP_SIZE = 32

_MAGIC = b"SEALWAL\x00"
_HEADER = struct.Struct("<8sIQ")  # magic, format, generation
_FRAME = struct.Struct("<II")  # payload byte length, crc32(payload)

#: Fixed header size in bytes — the offset of the first record frame.
#: Replication lineage markers count bytes from the start of the file,
#: so a freshly reset log's position is exactly this.
HEADER_SIZE = _HEADER.size


class WALError(SealError, RuntimeError):
    """A WAL file is missing, corrupt beyond its torn tail, or
    misaligned with its checkpoint snapshot."""


class WALLineageError(WALError):
    """A reader asked for a generation the log no longer is.

    Raised by :meth:`WALCursor.read_from` when the file's header names a
    different generation than the caller's lineage marker — the writer
    checkpointed (and :meth:`WriteAheadLog.reset`) since the caller last
    read.  Carries enough for the caller to decide whether it can adopt
    the new generation (it was exactly at the parent checkpoint) or must
    re-bootstrap from a snapshot.
    """

    def __init__(self, message: str, *, generation: int, parent: Optional[Dict]) -> None:
        super().__init__(message)
        #: The generation the file is at *now*.
        self.generation = generation
        #: The ``{"generation", "offset"}`` checkpoint whose reset
        #: produced the current log (``None`` for a generation-0 log).
        self.parent = dict(parent) if parent else None


@dataclass(frozen=True)
class WALRecord:
    """One decoded record plus the byte offset of its frame."""

    offset: int
    payload: Dict


@dataclass(frozen=True)
class WALContents:
    """A fully scanned WAL: every intact record plus tail accounting."""

    path: Path
    generation: int
    records: List[WALRecord]
    #: Byte offset just past the last intact record.
    good_end: int
    #: Torn/corrupt bytes past ``good_end`` (0 on a clean log).
    trailing_bytes: int

    @property
    def torn(self) -> bool:
        return self.trailing_bytes > 0

    @property
    def config(self) -> Optional[Dict]:
        """The engine-config record, when present (always first)."""
        if self.records and self.records[0].payload.get("op") == "config":
            return self.records[0].payload
        return None

    @property
    def parent_checkpoint(self) -> Optional[Dict]:
        """The ``(generation, offset)`` of the checkpoint whose reset
        created this log, or ``None`` for a generation-0 log.

        Recovery matches this against the snapshot's recorded position:
        a WAL one generation ahead of a snapshot is only that
        snapshot's post-checkpoint tail if the *same* checkpoint reset
        it — without the marker, a snapshot orphaned by checkpointing
        its shared WAL to another path would silently replay as empty.
        """
        config = self.config
        return config.get("checkpoint") if config else None

    def operations(self, start: int = 0) -> List[WALRecord]:
        """Non-config records whose frames start at or after ``start``."""
        return [
            record
            for record in self.records
            if record.offset >= start and record.payload.get("op") != "config"
        ]


def _encode(record: Dict) -> bytes:
    if not isinstance(record, dict) or "op" not in record:
        raise WALError(f"WAL records are dicts with an 'op' field, got {record!r}")
    return json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def read_wal(path: Union[str, Path]) -> WALContents:
    """Scan a WAL into records, tolerating (and measuring) a torn tail.

    Raises:
        WALError: The file is missing, too short for a header, carries
            the wrong magic or format, or holds a checksummed record
            that does not decode (a writer bug, never a torn write —
            the checksum proves the bytes are exactly what was written).
    """
    path = Path(path)
    if not path.exists():
        raise WALError(f"WAL not found: {path}")
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise WALError(f"{path} is too short to hold a WAL header")
    magic, fmt, generation = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise WALError(f"{path} is not a repro WAL file")
    if fmt != WAL_FORMAT:
        raise WALError(
            f"{path} uses WAL format {fmt}, this library reads format {WAL_FORMAT}"
        )
    records: List[WALRecord] = []
    offset = _HEADER.size
    good_end = offset
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            break  # torn frame header
        length, crc = _FRAME.unpack_from(data, offset)
        start, end = offset + _FRAME.size, offset + _FRAME.size + length
        if end > len(data):
            break  # torn payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # torn or bit-flipped; nothing past this point is trusted
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WALError(
                f"{path}: record at offset {offset} is checksummed but does not "
                f"decode ({exc}); this is writer corruption, not a torn tail"
            ) from exc
        if not isinstance(decoded, dict) or "op" not in decoded:
            raise WALError(
                f"{path}: record at offset {offset} is not an operation object"
            )
        records.append(WALRecord(offset=offset, payload=decoded))
        offset = end
        good_end = end
    return WALContents(
        path=path,
        generation=generation,
        records=records,
        good_end=good_end,
        trailing_bytes=len(data) - good_end,
    )


@dataclass(frozen=True)
class WALShipment:
    """A contiguous run of intact frames cut from a live log.

    ``data`` is the exact on-disk bytes of the frames spanning
    ``[start, end)`` — shippable verbatim, so a receiver re-verifies the
    same length-prefixed CRC framing the writer produced
    (:func:`decode_frames`) and inherits the writer's byte offsets as
    its lineage marker.
    """

    generation: int
    #: Byte offset of the first shipped frame.
    start: int
    #: Byte offset one past the last shipped frame (the new lineage
    #: offset a receiver advances to after applying).
    end: int
    data: bytes
    records: List[WALRecord]

    def __len__(self) -> int:
        return len(self.records)


def decode_frames(data: bytes, *, base_offset: int = 0) -> List[WALRecord]:
    """Decode a shipped run of frames, verifying every checksum.

    Unlike :func:`read_wal` there is no torn-tail tolerance: a shipment
    is a claim of exact bytes, so a short frame, a checksum mismatch or
    an undecodable payload is corruption-in-transit (or a divergent
    cut) and raises loudly.  Record offsets are absolute
    (``base_offset`` + position within ``data``), matching the sender's
    file offsets.

    Raises:
        WALError: Any byte of ``data`` fails to parse as intact frames.
    """
    records: List[WALRecord] = []
    offset = 0
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            raise WALError(
                f"shipped frames end mid-header at byte {base_offset + offset}"
            )
        length, crc = _FRAME.unpack_from(data, offset)
        start, end = offset + _FRAME.size, offset + _FRAME.size + length
        if end > len(data):
            raise WALError(
                f"shipped frame at byte {base_offset + offset} is truncated"
            )
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            raise WALError(
                f"shipped frame at byte {base_offset + offset} fails its checksum"
            )
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WALError(
                f"shipped frame at byte {base_offset + offset} is checksummed "
                f"but does not decode ({exc})"
            ) from exc
        if not isinstance(decoded, dict) or "op" not in decoded:
            raise WALError(
                f"shipped frame at byte {base_offset + offset} is not an "
                "operation object"
            )
        records.append(WALRecord(offset=base_offset + offset, payload=decoded))
        offset = end
    return records


class WALCursor:
    """A tailing reader over a (possibly live) WAL file.

    The replication primary holds one per log and answers each fetch by
    cutting the intact frames past the caller's ``(generation, offset)``
    lineage marker.  The cursor is stateless between calls — every read
    re-validates the header — so it tolerates the writer resetting the
    file underneath it (checkpoint): that surfaces as
    :class:`WALLineageError` instead of garbage.

    A reader may race the single writer's in-progress append; the
    buffered frame bytes reach the OS in one ``write`` + ``flush``, but
    a cursor that still lands mid-frame simply stops the shipment at
    the last complete frame (an incomplete tail is "nothing new yet",
    never an error).  A checksum mismatch at a frame boundary, by
    contrast, means the requested offset is not on this log's frame
    grid — a divergent reader — and raises.
    """

    #: Default per-read byte cap: comfortably under the wire protocol's
    #: 8 MiB frame limit after base64 expansion (×4/3) plus envelope.
    DEFAULT_MAX_BYTES = 4 * 1024 * 1024

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def _header(self, handle) -> int:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise WALError(f"{self.path} is too short to hold a WAL header")
        magic, fmt, generation = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise WALError(f"{self.path} is not a repro WAL file")
        if fmt != WAL_FORMAT:
            raise WALError(
                f"{self.path} uses WAL format {fmt}, this library reads "
                f"format {WAL_FORMAT}"
            )
        return generation

    def _parent_checkpoint(self, handle) -> Optional[Dict]:
        """The current log's parent-checkpoint marker (first record)."""
        handle.seek(_HEADER.size)
        frame_header = handle.read(_FRAME.size)
        if len(frame_header) < _FRAME.size:
            return None
        length, crc = _FRAME.unpack(frame_header)
        payload = handle.read(length)
        if len(payload) < length or zlib.crc32(payload) != crc:
            return None
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if isinstance(decoded, dict) and decoded.get("op") == "config":
            parent = decoded.get("checkpoint")
            return dict(parent) if isinstance(parent, dict) else None
        return None

    def read_from(
        self,
        generation: int,
        offset: int,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        end: Optional[int] = None,
    ) -> WALShipment:
        """Cut the intact frames in ``[offset, offset + max_bytes]``.

        Always ships at least one frame when an intact one exists at
        ``offset``, even if it alone exceeds ``max_bytes`` — a shipment
        must make progress or the tail would wedge behind one large
        record.

        ``end`` caps the cut at an exclusive byte bound (a frame
        boundary the caller knows to be sealed — e.g. the durable
        engine's stable watermark, past which a record may still be
        rolled back).  An ``offset`` at or past ``end`` ships empty.

        Raises:
            WALLineageError: The file is now at a different generation
                (the writer checkpointed); carries the new generation
                and its parent-checkpoint marker.
            WALError: The file is missing/garbled, ``offset`` is outside
                the log, or the bytes at ``offset`` are not a frame
                boundary (a divergent reader).
        """
        if offset < _HEADER.size:
            raise WALError(
                f"WAL offset {offset} is inside the header "
                f"(records start at {_HEADER.size})"
            )
        try:
            handle = self.path.open("rb")
        except OSError as exc:
            raise WALError(f"cannot read WAL {self.path}: {exc}") from exc
        with handle:
            current = self._header(handle)
            if current != generation:
                parent = self._parent_checkpoint(handle)
                raise WALLineageError(
                    f"{self.path} is at generation {current}, reader asked for "
                    f"{generation} (the writer checkpointed since)",
                    generation=current,
                    parent=parent,
                )
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if offset > size:
                raise WALError(
                    f"WAL offset {offset} is past the end of {self.path} "
                    f"({size} bytes) — divergent reader"
                )
            limit = size if end is None else min(size, end)
            if offset >= limit:
                return WALShipment(
                    generation=generation, start=offset, end=offset,
                    data=b"", records=[],
                )
            handle.seek(offset)
            # Over-read by one frame header so the cut never ends on a
            # frame we cannot even measure (but never past ``limit``,
            # whose bound is a frame boundary by contract).
            data = handle.read(min(max_bytes + _FRAME.size, limit - offset))
            if limit - offset < _FRAME.size:
                if end is not None:
                    # ``end`` is a sealed frame boundary by contract, yet
                    # fewer bytes than a frame header sit before it: the
                    # offset cannot be on the grid.
                    raise WALError(
                        f"{self.path}: offset {offset} leaves no room for a "
                        f"frame before the sealed bound {limit} — not on "
                        "this log's frame grid"
                    )
            else:
                first_length = _FRAME.unpack_from(data, 0)[0]
                first_end = _FRAME.size + first_length
                if first_end > len(data):
                    if offset + first_end <= limit:
                        # One frame may alone exceed the cap: widen the
                        # read to cover it whole, or a large record would
                        # wedge every shipment at this offset forever.
                        handle.seek(offset)
                        data = handle.read(first_end)
                    elif end is not None:
                        # The claimed frame overruns the sealed bound: a
                        # misaligned offset read garbage as a length.
                        raise WALError(
                            f"{self.path}: the frame at offset {offset} "
                            f"claims {first_length} payload bytes, past the "
                            f"sealed bound {limit} — not on this log's "
                            "frame grid"
                        )
        cut = 0
        records: List[WALRecord] = []
        position = 0
        while position < len(data):
            if position + _FRAME.size > len(data):
                break  # incomplete frame header: nothing more yet
            length, crc = _FRAME.unpack_from(data, position)
            start, end = position + _FRAME.size, position + _FRAME.size + length
            if end > len(data):
                break  # incomplete payload: writer mid-append (or capped)
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                # First frame failing means the offset is not a frame
                # boundary (divergent reader); a mid-run mismatch after
                # good frames is on-disk corruption.  Both are loud —
                # the reader must re-bootstrap, not skip bytes.
                raise WALError(
                    f"{self.path}: bytes at offset {offset + position} fail "
                    "their frame checksum — not on this log's frame grid"
                )
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise WALError(
                    f"{self.path}: record at offset {offset + position} is "
                    f"checksummed but does not decode ({exc})"
                ) from exc
            if not isinstance(decoded, dict) or "op" not in decoded:
                raise WALError(
                    f"{self.path}: record at offset {offset + position} is not "
                    "an operation object"
                )
            records.append(WALRecord(offset=offset + position, payload=decoded))
            position = end
            cut = end
            if cut >= max_bytes:
                break
        return WALShipment(
            generation=generation,
            start=offset,
            end=offset + cut,
            data=bytes(data[:cut]),
            records=records,
        )


class WriteAheadLog:
    """The single-writer appender (see the module docstring for format,
    generations and sync-policy semantics).

    Construct via :meth:`create` (fresh log, refuses to overwrite) or
    :meth:`open` (existing log; truncates any torn tail first).  Exposes
    ``appends`` and ``syncs`` counters so tests and the overhead bench
    can observe the group-commit behavior directly.
    """

    def __init__(
        self,
        path: Path,
        handle,
        *,
        generation: int,
        position: int,
        sync: str,
        group_size: int,
        config: Optional[Dict],
    ) -> None:
        self.path = Path(path)
        self._handle = handle
        self._generation = generation
        self._position = position
        self._sync_policy = sync
        self._group_size = group_size
        self._config = dict(config) if config else None
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False
        self.appends = 0
        self.syncs = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def _check_options(sync: str, group_size: int) -> None:
        if sync not in SYNC_POLICIES:
            raise WALError(f"unknown WAL sync policy {sync!r}; use one of {SYNC_POLICIES}")
        if group_size < 1:
            raise WALError("WAL group_size must be a positive int")

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        *,
        config: Dict,
        sync: str = "always",
        group_size: int = DEFAULT_GROUP_SIZE,
    ) -> "WriteAheadLog":
        """A fresh generation-0 WAL holding only the config record.

        Refuses an existing path: silently restarting a log that may
        hold unreplayed operations is exactly the data loss a WAL
        exists to prevent — recover it or remove it explicitly.
        """
        cls._check_options(sync, group_size)
        path = Path(path)
        if path.exists():
            raise WALError(
                f"refusing to overwrite existing WAL {path}; recover it first "
                "or remove it explicitly"
            )
        cls._write_fresh(path, generation=0, config=config)
        handle = path.open("r+b")
        handle.seek(0, os.SEEK_END)
        return cls(
            path, handle, generation=0, position=handle.tell(),
            sync=sync, group_size=group_size, config=config,
        )

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        *,
        sync: str = "always",
        group_size: int = DEFAULT_GROUP_SIZE,
        contents: Optional[WALContents] = None,
    ) -> "WriteAheadLog":
        """Open an existing WAL for appending.

        Any torn tail is truncated away (and fsynced) first: appending
        after garbage would hide valid-looking records behind an invalid
        one and corrupt the log for the next reader.  A caller that
        already scanned the file (recovery) passes its ``contents`` to
        skip the second full read + checksum pass.
        """
        cls._check_options(sync, group_size)
        if contents is None:
            contents = read_wal(path)
        path = Path(path)
        handle = path.open("r+b")
        try:
            if contents.trailing_bytes:
                handle.truncate(contents.good_end)
                handle.flush()
                os.fsync(handle.fileno())
            handle.seek(contents.good_end)
        except BaseException:
            handle.close()
            raise
        config = contents.config
        if config is not None:
            config = {
                key: value
                for key, value in config.items()
                if key not in ("op", "checkpoint")
            }
        return cls(
            path, handle, generation=contents.generation, position=contents.good_end,
            sync=sync, group_size=group_size, config=config,
        )

    @staticmethod
    def _write_fresh(
        path: Path,
        *,
        generation: int,
        config: Optional[Dict],
        parent: Optional[Dict] = None,
    ) -> None:
        """Durably (re)place ``path`` with a header + config record.

        ``parent`` is the checkpoint ``(generation, offset)`` whose
        reset produced this log (see ``WALContents.parent_checkpoint``).
        """
        blob = _HEADER.pack(_MAGIC, WAL_FORMAT, generation)
        if config is not None:
            record = dict(config, op="config")
            if parent is not None:
                record["checkpoint"] = dict(parent)
            blob += _frame(_encode(record))
        atomic_write_bytes(path, blob)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, record: Dict) -> int:
        """Append one operation record; returns its frame's byte offset.

        Durability on return is governed by the sync policy; the bytes
        always reach the OS (``flush``) so a same-machine reader — or a
        post-crash recovery, minus unsynced pages — sees them.
        """
        frame = _frame(_encode(record))
        with self._lock:
            self._ensure_open()
            offset = self._position
            self._handle.write(frame)
            self._position += len(frame)
            self.appends += 1
            self._pending += 1
            if self._sync_policy == "always" or (
                self._sync_policy == "batch" and self._pending >= self._group_size
            ):
                self._fsync_locked()
            else:
                self._handle.flush()
        return offset

    def sync(self) -> None:
        """Force pending appends to the device (a group-commit barrier)."""
        with self._lock:
            self._ensure_open()
            if self._pending:
                self._fsync_locked()

    def rollback(self, offset: int) -> None:
        """Truncate the log back to ``offset`` — the compensation for a
        mutation whose *apply* failed after its append succeeded.

        Without this, a surviving process whose engine rejected an
        operation would keep serving answers that diverge from what a
        post-crash replay reconstructs.  Only the tail may be rolled
        back (``offset`` must be a frame boundary at or past the
        header, before the current position); the truncation is fsynced
        so the removed record cannot resurface after a crash.
        """
        with self._lock:
            self._ensure_open()
            if not _HEADER.size <= offset <= self._position:
                raise WALError(
                    f"cannot roll {self.path} back to byte {offset} "
                    f"(log spans {_HEADER.size}..{self._position})"
                )
            self._handle.flush()
            self._handle.truncate(offset)
            self._handle.seek(offset)
            os.fsync(self._handle.fileno())
            self.syncs += 1
            self._position = offset
            self._pending = 0

    def _fsync_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.syncs += 1
        self._pending = 0

    def _ensure_open(self) -> None:
        if self._closed:
            raise WALError(f"WAL {self.path} is closed")

    # ------------------------------------------------------------------
    # Checkpoint support and lifecycle
    # ------------------------------------------------------------------

    def reset(self, *, parent: Optional[Dict] = None) -> int:
        """Truncate to a fresh header at ``generation + 1``.

        Called by the checkpoint *after* the snapshot (which recorded
        the pre-reset ``(generation, position)``) is durably on disk —
        the replacement is itself durable (temp + fsync + rename +
        directory fsync), so a crash at any instant leaves either the
        old full log or the new empty one, never a hybrid.  The caller
        passes the checkpoint position as ``parent`` so the fresh log
        names the exact checkpoint it continues (the lineage marker
        recovery matches against the snapshot).

        The old handle is swapped only after the replacement file is
        durably in place: a failure mid-reset (disk full, permissions)
        leaves the appender open on the intact old log, not half-closed.
        Returns the new generation.
        """
        with self._lock:
            self._ensure_open()
            generation = self._generation + 1
            self._write_fresh(
                self.path, generation=generation, config=self._config, parent=parent
            )
            old_handle = self._handle
            try:
                self._handle = self.path.open("r+b")
            except BaseException:
                # The name now points at the fresh log but we cannot
                # append to it; mark the appender unusable (close() is
                # then a no-op) rather than half-open.
                self._closed = True
                old_handle.close()
                raise
            old_handle.close()
            self._generation = generation
            self._handle.seek(0, os.SEEK_END)
            self._position = self._handle.tell()
            self._pending = 0
            return generation

    def close(self) -> None:
        """Sync pending appends and release the handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            if self._pending:
                self._fsync_locked()
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def position(self) -> int:
        """Byte offset one past the last appended record."""
        return self._position

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def sync_policy(self) -> str:
        return self._sync_policy

    @property
    def config(self) -> Optional[Dict]:
        """The engine-config record this log carries (a copy)."""
        return dict(self._config) if self._config else None

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(path={str(self.path)!r}, generation={self._generation}, "
            f"position={self._position}, sync={self._sync_policy!r})"
        )
