"""Write-ahead log: append-only, length-prefixed, checksummed records.

The segmented engine buffers inserts in memory and tombstones deletes
lazily, so everything since the last snapshot save dies with the
process.  The WAL closes that window the way every storage engine does:
each mutation is appended (and, per the sync policy, fsynced) *before*
it is applied, and recovery replays ``snapshot + WAL tail`` to
reconstruct exactly the pre-crash engine (see
:mod:`repro.exec.durable`).

**On-disk layout.**  A fixed header followed by a flat record stream::

    header : magic (8 bytes) | format u32 | generation u64     = 20 bytes
    record : payload-length u32 | crc32(payload) u32 | payload

Payloads are canonical JSON objects (sorted keys, no whitespace) with an
``"op"`` field.  The first record is always a ``config`` record carrying
the engine's constructor knobs, so a WAL is self-describing: recovery
can bootstrap an equivalent empty engine even when the snapshot file is
gone (possible only while ``generation == 0`` — see below).

**Generations and checkpoints.**  ``generation`` counts checkpoints.  A
checkpoint captures ``(generation, position)`` into the snapshot
envelope *before* :meth:`WriteAheadLog.reset` truncates the log to a
fresh header at ``generation + 1``.  Recovery aligns the two files by
that pair: same generation → replay from the recorded offset (the reset
never happened — nothing to double-apply); generation exactly one ahead
→ replay the whole log (the reset happened — the log holds only
post-checkpoint records); anything else → the files are not from the
same lineage and recovery fails loudly.

**Torn tails.**  A crash mid-append leaves a partial frame: a short
header, a short payload, or a checksum mismatch.  :func:`read_wal` stops
at the first invalid record and reports the dropped byte count;
:meth:`WriteAheadLog.open` truncates that tail away before appending
(appending after garbage would corrupt the log for the *next* reader).
Records behind a sync barrier — everything the chosen policy fsynced —
always parse, so an acknowledged-durable operation is never dropped.  A
checksum failure *before* the last sync barrier means fsynced data was
lost; the alignment checks in :mod:`repro.exec.durable` surface that as
a loud error rather than a silent truncation.

**Sync policies** (the durability/throughput dial):

* ``always`` — fsync after every append.  An operation is durable the
  moment ``append`` returns; one fsync per mutation.
* ``batch``  — group commit: fsync every ``group_size`` appends and on
  every explicit :meth:`sync` (checkpoints and close force one).  The
  classic throughput trade — a crash can lose at most the last
  unsynced group of *acknowledged-to-caller-but-unsynced* operations.
* ``none``   — never fsync on append (the OS flushes on its schedule);
  only checkpoints, :meth:`sync` and :meth:`close` force durability.

The appender is single-writer by design (the service serializes
mutations behind the :class:`~repro.service.manager.EngineManager`
write lock); an internal lock still guards it so misuse degrades to
serialization, not corruption.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.errors import SealError
from repro.io.atomic import atomic_write_bytes

#: Bump when the WAL header or frame layout changes incompatibly.
WAL_FORMAT = 1

#: Sync policies accepted by :class:`WriteAheadLog` (see module docs).
SYNC_POLICIES = ("always", "batch", "none")

#: Appends per fsync under the ``batch`` (group commit) policy.
DEFAULT_GROUP_SIZE = 32

_MAGIC = b"SEALWAL\x00"
_HEADER = struct.Struct("<8sIQ")  # magic, format, generation
_FRAME = struct.Struct("<II")  # payload byte length, crc32(payload)


class WALError(SealError, RuntimeError):
    """A WAL file is missing, corrupt beyond its torn tail, or
    misaligned with its checkpoint snapshot."""


@dataclass(frozen=True)
class WALRecord:
    """One decoded record plus the byte offset of its frame."""

    offset: int
    payload: Dict


@dataclass(frozen=True)
class WALContents:
    """A fully scanned WAL: every intact record plus tail accounting."""

    path: Path
    generation: int
    records: List[WALRecord]
    #: Byte offset just past the last intact record.
    good_end: int
    #: Torn/corrupt bytes past ``good_end`` (0 on a clean log).
    trailing_bytes: int

    @property
    def torn(self) -> bool:
        return self.trailing_bytes > 0

    @property
    def config(self) -> Optional[Dict]:
        """The engine-config record, when present (always first)."""
        if self.records and self.records[0].payload.get("op") == "config":
            return self.records[0].payload
        return None

    @property
    def parent_checkpoint(self) -> Optional[Dict]:
        """The ``(generation, offset)`` of the checkpoint whose reset
        created this log, or ``None`` for a generation-0 log.

        Recovery matches this against the snapshot's recorded position:
        a WAL one generation ahead of a snapshot is only that
        snapshot's post-checkpoint tail if the *same* checkpoint reset
        it — without the marker, a snapshot orphaned by checkpointing
        its shared WAL to another path would silently replay as empty.
        """
        config = self.config
        return config.get("checkpoint") if config else None

    def operations(self, start: int = 0) -> List[WALRecord]:
        """Non-config records whose frames start at or after ``start``."""
        return [
            record
            for record in self.records
            if record.offset >= start and record.payload.get("op") != "config"
        ]


def _encode(record: Dict) -> bytes:
    if not isinstance(record, dict) or "op" not in record:
        raise WALError(f"WAL records are dicts with an 'op' field, got {record!r}")
    return json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def read_wal(path: Union[str, Path]) -> WALContents:
    """Scan a WAL into records, tolerating (and measuring) a torn tail.

    Raises:
        WALError: The file is missing, too short for a header, carries
            the wrong magic or format, or holds a checksummed record
            that does not decode (a writer bug, never a torn write —
            the checksum proves the bytes are exactly what was written).
    """
    path = Path(path)
    if not path.exists():
        raise WALError(f"WAL not found: {path}")
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise WALError(f"{path} is too short to hold a WAL header")
    magic, fmt, generation = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise WALError(f"{path} is not a repro WAL file")
    if fmt != WAL_FORMAT:
        raise WALError(
            f"{path} uses WAL format {fmt}, this library reads format {WAL_FORMAT}"
        )
    records: List[WALRecord] = []
    offset = _HEADER.size
    good_end = offset
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            break  # torn frame header
        length, crc = _FRAME.unpack_from(data, offset)
        start, end = offset + _FRAME.size, offset + _FRAME.size + length
        if end > len(data):
            break  # torn payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # torn or bit-flipped; nothing past this point is trusted
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WALError(
                f"{path}: record at offset {offset} is checksummed but does not "
                f"decode ({exc}); this is writer corruption, not a torn tail"
            ) from exc
        if not isinstance(decoded, dict) or "op" not in decoded:
            raise WALError(
                f"{path}: record at offset {offset} is not an operation object"
            )
        records.append(WALRecord(offset=offset, payload=decoded))
        offset = end
        good_end = end
    return WALContents(
        path=path,
        generation=generation,
        records=records,
        good_end=good_end,
        trailing_bytes=len(data) - good_end,
    )


class WriteAheadLog:
    """The single-writer appender (see the module docstring for format,
    generations and sync-policy semantics).

    Construct via :meth:`create` (fresh log, refuses to overwrite) or
    :meth:`open` (existing log; truncates any torn tail first).  Exposes
    ``appends`` and ``syncs`` counters so tests and the overhead bench
    can observe the group-commit behavior directly.
    """

    def __init__(
        self,
        path: Path,
        handle,
        *,
        generation: int,
        position: int,
        sync: str,
        group_size: int,
        config: Optional[Dict],
    ) -> None:
        self.path = Path(path)
        self._handle = handle
        self._generation = generation
        self._position = position
        self._sync_policy = sync
        self._group_size = group_size
        self._config = dict(config) if config else None
        self._lock = threading.Lock()
        self._pending = 0
        self._closed = False
        self.appends = 0
        self.syncs = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def _check_options(sync: str, group_size: int) -> None:
        if sync not in SYNC_POLICIES:
            raise WALError(f"unknown WAL sync policy {sync!r}; use one of {SYNC_POLICIES}")
        if group_size < 1:
            raise WALError("WAL group_size must be a positive int")

    @classmethod
    def create(
        cls,
        path: Union[str, Path],
        *,
        config: Dict,
        sync: str = "always",
        group_size: int = DEFAULT_GROUP_SIZE,
    ) -> "WriteAheadLog":
        """A fresh generation-0 WAL holding only the config record.

        Refuses an existing path: silently restarting a log that may
        hold unreplayed operations is exactly the data loss a WAL
        exists to prevent — recover it or remove it explicitly.
        """
        cls._check_options(sync, group_size)
        path = Path(path)
        if path.exists():
            raise WALError(
                f"refusing to overwrite existing WAL {path}; recover it first "
                "or remove it explicitly"
            )
        cls._write_fresh(path, generation=0, config=config)
        handle = path.open("r+b")
        handle.seek(0, os.SEEK_END)
        return cls(
            path, handle, generation=0, position=handle.tell(),
            sync=sync, group_size=group_size, config=config,
        )

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        *,
        sync: str = "always",
        group_size: int = DEFAULT_GROUP_SIZE,
        contents: Optional[WALContents] = None,
    ) -> "WriteAheadLog":
        """Open an existing WAL for appending.

        Any torn tail is truncated away (and fsynced) first: appending
        after garbage would hide valid-looking records behind an invalid
        one and corrupt the log for the next reader.  A caller that
        already scanned the file (recovery) passes its ``contents`` to
        skip the second full read + checksum pass.
        """
        cls._check_options(sync, group_size)
        if contents is None:
            contents = read_wal(path)
        path = Path(path)
        handle = path.open("r+b")
        try:
            if contents.trailing_bytes:
                handle.truncate(contents.good_end)
                handle.flush()
                os.fsync(handle.fileno())
            handle.seek(contents.good_end)
        except BaseException:
            handle.close()
            raise
        config = contents.config
        if config is not None:
            config = {
                key: value
                for key, value in config.items()
                if key not in ("op", "checkpoint")
            }
        return cls(
            path, handle, generation=contents.generation, position=contents.good_end,
            sync=sync, group_size=group_size, config=config,
        )

    @staticmethod
    def _write_fresh(
        path: Path,
        *,
        generation: int,
        config: Optional[Dict],
        parent: Optional[Dict] = None,
    ) -> None:
        """Durably (re)place ``path`` with a header + config record.

        ``parent`` is the checkpoint ``(generation, offset)`` whose
        reset produced this log (see ``WALContents.parent_checkpoint``).
        """
        blob = _HEADER.pack(_MAGIC, WAL_FORMAT, generation)
        if config is not None:
            record = dict(config, op="config")
            if parent is not None:
                record["checkpoint"] = dict(parent)
            blob += _frame(_encode(record))
        atomic_write_bytes(path, blob)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def append(self, record: Dict) -> int:
        """Append one operation record; returns its frame's byte offset.

        Durability on return is governed by the sync policy; the bytes
        always reach the OS (``flush``) so a same-machine reader — or a
        post-crash recovery, minus unsynced pages — sees them.
        """
        frame = _frame(_encode(record))
        with self._lock:
            self._ensure_open()
            offset = self._position
            self._handle.write(frame)
            self._position += len(frame)
            self.appends += 1
            self._pending += 1
            if self._sync_policy == "always" or (
                self._sync_policy == "batch" and self._pending >= self._group_size
            ):
                self._fsync_locked()
            else:
                self._handle.flush()
        return offset

    def sync(self) -> None:
        """Force pending appends to the device (a group-commit barrier)."""
        with self._lock:
            self._ensure_open()
            if self._pending:
                self._fsync_locked()

    def rollback(self, offset: int) -> None:
        """Truncate the log back to ``offset`` — the compensation for a
        mutation whose *apply* failed after its append succeeded.

        Without this, a surviving process whose engine rejected an
        operation would keep serving answers that diverge from what a
        post-crash replay reconstructs.  Only the tail may be rolled
        back (``offset`` must be a frame boundary at or past the
        header, before the current position); the truncation is fsynced
        so the removed record cannot resurface after a crash.
        """
        with self._lock:
            self._ensure_open()
            if not _HEADER.size <= offset <= self._position:
                raise WALError(
                    f"cannot roll {self.path} back to byte {offset} "
                    f"(log spans {_HEADER.size}..{self._position})"
                )
            self._handle.flush()
            self._handle.truncate(offset)
            self._handle.seek(offset)
            os.fsync(self._handle.fileno())
            self.syncs += 1
            self._position = offset
            self._pending = 0

    def _fsync_locked(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.syncs += 1
        self._pending = 0

    def _ensure_open(self) -> None:
        if self._closed:
            raise WALError(f"WAL {self.path} is closed")

    # ------------------------------------------------------------------
    # Checkpoint support and lifecycle
    # ------------------------------------------------------------------

    def reset(self, *, parent: Optional[Dict] = None) -> int:
        """Truncate to a fresh header at ``generation + 1``.

        Called by the checkpoint *after* the snapshot (which recorded
        the pre-reset ``(generation, position)``) is durably on disk —
        the replacement is itself durable (temp + fsync + rename +
        directory fsync), so a crash at any instant leaves either the
        old full log or the new empty one, never a hybrid.  The caller
        passes the checkpoint position as ``parent`` so the fresh log
        names the exact checkpoint it continues (the lineage marker
        recovery matches against the snapshot).

        The old handle is swapped only after the replacement file is
        durably in place: a failure mid-reset (disk full, permissions)
        leaves the appender open on the intact old log, not half-closed.
        Returns the new generation.
        """
        with self._lock:
            self._ensure_open()
            generation = self._generation + 1
            self._write_fresh(
                self.path, generation=generation, config=self._config, parent=parent
            )
            old_handle = self._handle
            try:
                self._handle = self.path.open("r+b")
            except BaseException:
                # The name now points at the fresh log but we cannot
                # append to it; mark the appender unusable (close() is
                # then a no-op) rather than half-open.
                self._closed = True
                old_handle.close()
                raise
            old_handle.close()
            self._generation = generation
            self._handle.seek(0, os.SEEK_END)
            self._position = self._handle.tell()
            self._pending = 0
            return generation

    def close(self) -> None:
        """Sync pending appends and release the handle (idempotent)."""
        with self._lock:
            if self._closed:
                return
            if self._pending:
                self._fsync_locked()
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def position(self) -> int:
        """Byte offset one past the last appended record."""
        return self._position

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def sync_policy(self) -> str:
        return self._sync_policy

    @property
    def config(self) -> Optional[Dict]:
        """The engine-config record this log carries (a copy)."""
        return dict(self._config) if self._config else None

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(path={str(self.path)!r}, generation={self._generation}, "
            f"position={self._position}, sync={self._sync_policy!r})"
        )
