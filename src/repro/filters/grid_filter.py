"""``GridFilter`` — Sig-Filter(+) over grid-based signatures (Section 4).

Grid cells intersecting a region form its spatial signature (Definition
4); weights are intersection areas, the threshold is ``c_R = τ_R·|q.R|``
(Lemma 1), the global order is ascending ``count(g)``, and threshold
bounds per posting realise Figure 5's "inverted index with threshold
bounds".
"""

from __future__ import annotations

from typing import Sequence

from repro.core.objects import Query, SpatioTextualObject
from repro.filters.base import SingleSchemeFilter
from repro.geometry import Rect
from repro.signatures.spatial import GridScheme
from repro.text.weights import TokenWeighter


class GridFilter(SingleSchemeFilter):
    """Grid signature filtering (``GridFilter(p)`` in the experiments).

    Args:
        objects: The corpus.
        weighter: Corpus idf statistics (verification needs them).
        granularity: Cells per side ``p`` (the paper sweeps 64 … 8192).
        space: Partitioned space; defaults to the corpus MBR.
        order: Global cell order (ablation hook; paper uses
            ``"count_asc"``).
        prefix_pruning: False reverts to the plain Sig-Filter.

    Only ``τR == 0`` is degenerate for grids: a query region with zero
    area still owns a cell, and any object tying a positive spatial
    Jaccard with it must share that cell, so ``c_R == 0`` from a
    degenerate region needs no fallback.
    """

    name = "grid"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
        *,
        granularity: int = 256,
        space: Rect | None = None,
        order: str = "count_asc",
        prefix_pruning: bool = True,
        backend: str | None = None,
    ) -> None:
        scheme = GridScheme.from_corpus(objects, granularity, space=space, order=order)
        super().__init__(
            objects, scheme, weighter, prefix_pruning=prefix_pruning, backend=backend
        )
        self.granularity = granularity

    def _is_degenerate(self, query: Query) -> bool:
        return query.tau_r <= 0.0
