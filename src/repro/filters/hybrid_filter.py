"""``HybridFilter`` — hash-based hybrid signatures (Section 5.1).

An object's hybrid signature is the cross product of its textual and
spatial signatures: every ``(token, cell)`` pair, optionally hashed into a
bounded number of buckets to cap the inverted-list directory.  Each
posting carries *both* threshold bounds — the textual Lemma 3 bound of
the token and the spatial Lemma 3 bound of the cell — and is pruned when
either falls below its derived threshold (``Hybrid-Sig-Filter+``,
Figure 8).

A query probes only the cross product of its two signature *prefixes*,
which is what makes the hybrid an order of magnitude faster than spatial
pruning alone (Figure 14): candidates must be simultaneously plausible on
both axes.
"""

from __future__ import annotations

import zlib
from typing import Collection, Sequence

from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchStats
from repro.geometry import Rect
from repro.index.inverted import InvertedIndex
from repro.index.postings import DualBoundPostingList
from repro.index.storage import IndexSizeReport, measure_index
from repro.signatures.prefix import select_prefix, suffix_bounds
from repro.signatures.spatial import GridScheme
from repro.signatures.textual import TextualScheme
from repro.text.weights import TokenWeighter

#: Key type in the hybrid index: an exact (token, cell) pair, or an int
#: bucket when hashing is enabled.
HybridKey = "tuple[str, int] | int"


def _bucket(token: str, cell: int, num_buckets: int) -> int:
    """Stable hash of a (token, cell) pair into ``num_buckets`` buckets.

    CRC32 rather than ``hash()``: Python randomises string hashing per
    process, which would make index layouts — and benchmark numbers —
    non-reproducible.
    """
    return zlib.crc32(f"{token}\x1f{cell}".encode("utf-8")) % num_buckets


class HybridFilter(SearchMethod):
    """Hash-based hybrid signature filtering (``HybridFilter(p)``).

    Args:
        objects: The corpus.
        weighter: Corpus idf statistics (built if omitted).
        granularity: Grid cells per side for the spatial half.
        num_buckets: Cap on the number of inverted lists; ``None`` keeps
            exact ``(token, cell)`` keys (no collisions).  Collisions cost
            only extra candidates — never missed answers — because every
            posting is verified.
        space: Grid space override (defaults to the corpus MBR).
        order: Global cell order name.
        backend: Index storage backend (``"python"``, ``"columnar"``, or
            ``None`` for the environment default).
    """

    name = "hash-hybrid"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
        *,
        granularity: int = 256,
        num_buckets: int | None = None,
        space: Rect | None = None,
        order: str = "count_asc",
        backend: str | None = None,
    ) -> None:
        super().__init__(objects, weighter)
        self.granularity = granularity
        self.num_buckets = num_buckets
        self.textual = TextualScheme(self.weighter)
        self.spatial = GridScheme.from_corpus(objects, granularity, space=space, order=order)
        self.index: InvertedIndex = InvertedIndex(DualBoundPostingList)
        for obj in self.corpus:
            token_sig = self.textual.object_signature(obj)
            token_bounds = suffix_bounds([w for _, w in token_sig])
            cell_sig = self.spatial.object_signature(obj)
            cell_bounds = suffix_bounds([w for _, w in cell_sig])
            for (token, _), t_bound in zip(token_sig, token_bounds):
                for (cell, _), r_bound in zip(cell_sig, cell_bounds):
                    key = self._key(token, cell)
                    self.index.list_for(key).add(obj.oid, r_bound, t_bound)
        self.index.freeze(backend=backend)
        self.backend = self.index.backend

    def _key(self, token: str, cell: int):
        if self.num_buckets is None:
            return (token, cell)
        return _bucket(token, cell, self.num_buckets)

    # ------------------------------------------------------------------
    # Filter step (Hybrid-Sig-Filter+, Figure 8)
    # ------------------------------------------------------------------

    def _is_degenerate(self, query: Query) -> bool:
        # Hybrid lists can only reach objects sharing a token AND a cell
        # with the query; either predicate being vacuous breaks that.
        return self.textual.threshold(query) <= 0.0 or query.tau_r <= 0.0

    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        if self._is_degenerate(query):
            return self.all_oids()
        c_t = self.textual.threshold(query)
        c_r = self.spatial.threshold(query)
        token_sig = self.textual.query_signature(query)
        cell_sig = self.spatial.query_signature(query)
        token_prefix = token_sig[: select_prefix([w for _, w in token_sig], c_t)]
        cell_prefix = cell_sig[: select_prefix([w for _, w in cell_sig], c_r)]
        index = self.index
        store = index.store
        scratch = store.begin_union() if store is not None else None
        out: set[int] = set()
        probed: set = set()
        for token, _ in token_prefix:
            for cell, _ in cell_prefix:
                key = self._key(token, cell)
                if key in probed:
                    # Bucketed keys can collide across (t, g) pairs; one
                    # probe with the same thresholds covers them all.
                    continue
                probed.add(key)
                result = index.probe_dual(key, c_r, c_t)
                if result is None:
                    continue
                retrieved, scanned = result
                stats.lists_probed += 1
                stats.entries_retrieved += scanned
                stats.entries_matched += len(retrieved)
                if scratch is not None:
                    scratch.add(retrieved)
                else:
                    out.update(retrieved)
        return scratch.result() if scratch is not None else out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_size(self) -> IndexSizeReport:
        return measure_index(self.index, bounds_per_posting=2)
