"""Shared machinery for single-scheme signature filters.

``TokenFilter`` and ``GridFilter`` are the same algorithm instantiated
with different signature schemes; :class:`SingleSchemeFilter` implements
that algorithm once, in two variants:

* **Sig-Filter+** (default, Figure 6): postings carry Lemma 3 suffix
  bounds, the query probes only its Lemma 2 prefix, and each probed list
  returns only the head whose bound reaches the threshold.
* **Sig-Filter** (``prefix_pruning=False``, Figure 3): postings carry raw
  element weights, the query probes its *whole* signature, and the filter
  accumulates the exact signature similarity ``Σ min(w(s|q), w(s|o))``,
  keeping objects that reach the threshold.  Kept for the pruning
  ablation — it shows precisely what the `+` buys.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Collection, List, Protocol, Sequence, Tuple

from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchStats
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.index.storage import IndexSizeReport, measure_index
from repro.signatures.prefix import select_prefix, suffix_bounds
from repro.text.weights import TokenWeighter


class SignatureScheme(Protocol):
    """What a signature scheme must provide (see :mod:`repro.signatures`)."""

    element_kind: str

    def object_signature(self, obj: SpatioTextualObject) -> List[Tuple[object, float]]: ...

    def query_signature(self, query: Query) -> List[Tuple[object, float]]: ...

    def threshold(self, query: Query) -> float: ...


class SingleSchemeFilter(SearchMethod):
    """Sig-Filter(+) over one signature scheme.

    Args:
        objects: The corpus.
        scheme: Signature scheme (textual or grid).
        weighter: Corpus idf statistics (built if omitted).
        prefix_pruning: True → Sig-Filter+ (threshold-aware); False →
            plain Sig-Filter.
        backend: Index storage backend (``"python"``, ``"columnar"``, or
            ``None`` for the environment default).  Answers and probe
            statistics are identical across backends; only speed differs.
    """

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        scheme: SignatureScheme,
        weighter: TokenWeighter | None = None,
        *,
        prefix_pruning: bool = True,
        backend: str | None = None,
    ) -> None:
        super().__init__(objects, weighter)
        self.scheme = scheme
        self.prefix_pruning = prefix_pruning
        self.index: InvertedIndex = InvertedIndex(PostingList)
        for obj in self.corpus:
            signature = scheme.object_signature(obj)
            if prefix_pruning:
                bounds = suffix_bounds([w for _, w in signature])
                for (element, _), bound in zip(signature, bounds):
                    self.index.list_for(element).add(obj.oid, bound)
            else:
                for element, weight in signature:
                    self.index.list_for(element).add(obj.oid, weight)
        self.index.freeze(backend=backend)
        self.backend = self.index.backend

    # ------------------------------------------------------------------
    # Filter step
    # ------------------------------------------------------------------

    def _is_degenerate(self, query: Query) -> bool:
        """True when the scheme cannot see some legitimate answers.

        Subclasses refine this; the safe default is a vacuous (≤ 0)
        derived threshold, under which objects sharing *no* signature
        element with the query may still satisfy the similarity predicate.
        """
        return self.scheme.threshold(query) <= 0.0

    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        if self._is_degenerate(query):
            return self.all_oids()
        threshold = self.scheme.threshold(query)
        signature = self.scheme.query_signature(query)
        if self.prefix_pruning:
            return self._candidates_prefix(signature, threshold, stats)
        return self._candidates_plain(signature, threshold, stats)

    def _candidates_prefix(
        self,
        signature: Sequence[Tuple[object, float]],
        threshold: float,
        stats: SearchStats,
    ) -> Collection[int]:
        """Sig-Filter+: union of threshold-bounded heads over the prefix.

        Probing a missing element still counts as a probe (the directory
        lookup happens either way) and retrieves an empty head, so the
        statistics are backend-independent by construction.
        """
        prefix_len = select_prefix([w for _, w in signature], threshold)
        store = self.index.store
        scratch = store.begin_union() if store is not None else None
        out: set[int] = set()
        probe = self.index.probe
        for element, _ in signature[:prefix_len]:
            retrieved = probe(element, threshold)
            stats.lists_probed += 1
            stats.entries_retrieved += len(retrieved)
            stats.entries_matched += len(retrieved)
            if scratch is not None:
                scratch.add(retrieved)
            else:
                out.update(retrieved)
        return scratch.result() if scratch is not None else out

    def _candidates_plain(
        self,
        signature: Sequence[Tuple[object, float]],
        threshold: float,
        stats: SearchStats,
    ) -> Collection[int]:
        """Sig-Filter: accumulate exact signature similarity over all lists.

        Both paths accumulate ``Σ min(w(s|q), w(s|o))`` in float64 with
        identical per-oid addition order (lists visited in signature
        order, one entry per oid per list), so the surviving candidate
        sets are identical — the columnar path just runs it as array
        kernels over the CSR columns.
        """
        store = self.index.store
        if store is not None:
            scratch = store.begin_union()
            acc = scratch.accumulator(len(self.corpus))
            for element, query_weight in signature:
                entries = store.accumulate(acc, element, query_weight, scratch)
                if entries is None:
                    continue
                stats.lists_probed += 1
                stats.entries_retrieved += entries
                stats.entries_matched += entries
            touched = scratch.result()
            out = touched[acc[touched] >= threshold]
            acc[touched] = 0.0  # keep the reusable accumulator zeroed
            return out
        acc: defaultdict[int, float] = defaultdict(float)
        for element, query_weight in signature:
            plist = self.index.get(element)
            if plist is None:
                continue
            stats.lists_probed += 1
            for oid, object_weight in plist:
                stats.entries_retrieved += 1
                stats.entries_matched += 1
                acc[oid] += object_weight if object_weight < query_weight else query_weight
        return [oid for oid, sim in acc.items() if sim >= threshold]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_size(self) -> IndexSizeReport:
        return measure_index(self.index, bounds_per_posting=1)
