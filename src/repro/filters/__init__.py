"""SEAL's signature-based filter methods (Sections 3–5).

* :class:`~repro.filters.token_filter.TokenFilter` — textual signatures
  (``TokenFilter`` in the experiments).
* :class:`~repro.filters.grid_filter.GridFilter` — grid-based spatial
  signatures with threshold-aware pruning (``GridFilter``).
* :class:`~repro.filters.hybrid_filter.HybridFilter` — hash-based hybrid
  ``(token, cell)`` signatures (``HybridFilter``).
* :class:`~repro.filters.hierarchical_filter.HierarchicalFilter` — the
  full SEAL method with HSS-selected per-token hierarchical grids.

Each accepts ``prefix_pruning=False`` to fall back to the plain
``Sig-Filter`` (no prefixes, no bounds) for ablation, where applicable.
"""

from repro.filters.grid_filter import GridFilter
from repro.filters.hierarchical_filter import HierarchicalFilter
from repro.filters.hybrid_filter import HybridFilter
from repro.filters.token_filter import TokenFilter

__all__ = ["GridFilter", "HierarchicalFilter", "HybridFilter", "TokenFilter"]
