"""``HierarchicalFilter`` — SEAL's full method (Section 5.2).

Instead of one fixed-granularity grid for every token, each token gets
its own HSS-selected hierarchical partition ``G_t`` of at most ``mt``
cells: small-region tokens get fine cells where their objects live,
large-region tokens get coarse cells that avoid useless signature
elements.  The filtering algorithm is ``Hybrid-Sig-Filter+`` run
per-token against that token's grids (Example 5 / Figure 10).

This is the method labelled **SEAL** in the paper's method-comparison
experiments (Figures 16–17).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Collection, Dict, List, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchStats
from repro.geometry import Rect
from repro.geometry.rect import mbr_of
from repro.grid.hierarchy import GridHierarchy, HierCell
from repro.index.inverted import InvertedIndex
from repro.index.postings import DualBoundPostingList
from repro.index.storage import IndexSizeReport, measure_index
from repro.signatures.hierarchical import TokenGrids, select_token_grids
from repro.signatures.prefix import select_prefix, suffix_bounds
from repro.signatures.textual import TextualScheme
from repro.text.weights import TokenWeighter


class HierarchicalFilter(SearchMethod):
    """Hierarchical hybrid signature filtering (the **SEAL** method).

    Args:
        objects: The corpus.
        weighter: Corpus idf statistics (built if omitted).
        mt: Per-token grid budget (max hierarchical cells per token).
            With ``budget_scaling`` this becomes the *cap*.
        max_level: Finest grid-tree level HSS may refine to; level ``l``
            cells have side ``space_side / 2^l``.
        space: Grid-tree space; defaults to the corpus MBR.
        min_objects: Tokens appearing in at most this many objects keep
            the trivial root partition (their lists are short already).
        budget_scaling: Optional α; when set, token ``t`` gets budget
            ``clamp(round(α·|I(t)|), 4, mt)`` instead of a flat ``mt``.
            This realises Section 5.2's *global* index-size constraint:
            frequent tokens have long inverted lists and earn
            proportionally more grid elements (mirroring how the hash
            scheme's element count scales with |I(t)|), which is what
            lets hierarchical signatures match fixed-granularity
            filtering power at a smaller total budget.
        backend: Index storage backend (``"python"``, ``"columnar"``, or
            ``None`` for the environment default).

    Raises:
        ConfigurationError: On an empty corpus or ``mt < 1``.
    """

    name = "seal"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
        *,
        mt: int = 32,
        max_level: int = 8,
        space: Rect | None = None,
        min_objects: int = 4,
        budget_scaling: float | None = None,
        backend: str | None = None,
    ) -> None:
        super().__init__(objects, weighter)
        if mt < 1:
            raise ConfigurationError(f"mt must be >= 1, got {mt}")
        if budget_scaling is not None and budget_scaling <= 0.0:
            raise ConfigurationError(
                f"budget_scaling must be positive, got {budget_scaling}"
            )
        if not len(self.corpus):
            raise ConfigurationError("HierarchicalFilter requires a non-empty corpus")
        self.mt = mt
        self.budget_scaling = budget_scaling
        self.textual = TextualScheme(self.weighter)
        if space is None:
            space = mbr_of([obj.region for obj in self.corpus])
            if space.width <= 0.0 or space.height <= 0.0:
                space = space.buffer(max(space.width, space.height, 1.0) * 0.5)
        self.hierarchy = GridHierarchy(space, max_level)

        # Pass 1: group object regions per token (the paper's I(t)).
        per_token_regions: Dict[str, List[Rect]] = defaultdict(list)
        for obj in self.corpus:
            for token in obj.tokens:
                per_token_regions[token].append(obj.region)

        # Pass 2: HSS-Greedy per token.
        def token_budget(list_size: int) -> int:
            if budget_scaling is None:
                return mt
            return max(4, min(mt, round(budget_scaling * list_size)))

        self.token_grids: Dict[str, TokenGrids] = {
            token: select_token_grids(
                regions, self.hierarchy, token_budget(len(regions)), min_objects=min_objects
            )
            for token, regions in per_token_regions.items()
        }

        # Pass 3: build the (token, cell) inverted index with dual bounds.
        self.index: InvertedIndex = InvertedIndex(DualBoundPostingList)
        for obj in self.corpus:
            token_sig = self.textual.object_signature(obj)
            token_bounds = suffix_bounds([w for _, w in token_sig])
            for (token, _), t_bound in zip(token_sig, token_bounds):
                cells = self._region_cells(self.token_grids[token], obj.region)
                cell_bounds = suffix_bounds([w for _, w in cells])
                for (cell, _), r_bound in zip(cells, cell_bounds):
                    self.index.list_for((token, cell)).add(obj.oid, r_bound, t_bound)
        self.index.freeze(backend=backend)
        self.backend = self.index.backend

    @staticmethod
    def _region_cells(grids: TokenGrids, region: Rect) -> List[Tuple[HierCell, float]]:
        """Cells of one token's partition intersecting ``region``, in the
        token's global order, weighted by intersection area.

        ``G_t`` holds at most ``mt`` cells, so a linear scan with inlined
        rectangle arithmetic beats any spatial structure here — and this
        runs once per (object, token) pair at build time.
        """
        rx1, ry1, rx2, ry2 = region.x1, region.y1, region.x2, region.y2
        out: List[Tuple[HierCell, float]] = []
        for cell, (bx1, by1, bx2, by2) in zip(grids.cells, grids.boxes):
            if rx1 <= bx2 and bx1 <= rx2 and ry1 <= by2 and by1 <= ry2:
                dx = (bx2 if bx2 < rx2 else rx2) - (bx1 if bx1 > rx1 else rx1)
                dy = (by2 if by2 < ry2 else ry2) - (by1 if by1 > ry1 else ry1)
                out.append((cell, dx * dy if dx > 0.0 and dy > 0.0 else 0.0))
        return out

    # ------------------------------------------------------------------
    # Filter step
    # ------------------------------------------------------------------

    def _is_degenerate(self, query: Query) -> bool:
        return self.textual.threshold(query) <= 0.0 or query.tau_r <= 0.0

    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        if self._is_degenerate(query):
            return self.all_oids()
        c_t = self.textual.threshold(query)
        c_r = query.tau_r * query.region.area
        token_sig = self.textual.query_signature(query)
        token_prefix = token_sig[: select_prefix([w for _, w in token_sig], c_t)]
        index = self.index
        store = index.store
        scratch = store.begin_union() if store is not None else None
        out: set[int] = set()
        for token, _ in token_prefix:
            grids = self.token_grids.get(token)
            if grids is None:
                # No object contains this token: nothing to probe, and no
                # answer can hinge on it (it contributes weight only to
                # the union, which the threshold already accounts for).
                continue
            cells = self._region_cells(grids, query.region)
            spatial_prefix = cells[: select_prefix([w for _, w in cells], c_r)]
            for cell, _ in spatial_prefix:
                result = index.probe_dual((token, cell), c_r, c_t)
                if result is None:
                    continue
                retrieved, scanned = result
                stats.lists_probed += 1
                stats.entries_retrieved += scanned
                stats.entries_matched += len(retrieved)
                if scratch is not None:
                    scratch.add(retrieved)
                else:
                    out.update(retrieved)
        return scratch.result() if scratch is not None else out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_size(self) -> IndexSizeReport:
        return measure_index(self.index, bounds_per_posting=2)
