"""``TokenFilter`` — Sig-Filter(+) over textual signatures (Section 3.2).

Figure 4's running example: tokens are the signature elements, weighted by
idf, with threshold ``c_T = τ_T · Σ_{t∈q.T} w(t)``; Section 4.2 notes the
algorithm "can be also applied to textual signatures" with tokens sorted
descending by idf — that is exactly this class with the default
``prefix_pruning=True``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.objects import SpatioTextualObject
from repro.filters.base import SingleSchemeFilter
from repro.signatures.textual import TextualScheme
from repro.text.weights import TokenWeighter


class TokenFilter(SingleSchemeFilter):
    """Textual signature filtering (``TokenFilter`` in the experiments).

    Degenerate queries — those whose derived textual threshold is ≤ 0
    (``τT == 0``, empty token set, or all-zero idf) — fall back to a full
    candidate scan: a token index cannot reach objects that share no token
    with the query, yet such objects may still satisfy a vacuous textual
    predicate.
    """

    name = "token"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
        *,
        prefix_pruning: bool = True,
        backend: str | None = None,
    ) -> None:
        if weighter is None:
            weighter = TokenWeighter(obj.tokens for obj in objects)
        scheme = TextualScheme(weighter)
        super().__init__(
            objects, scheme, weighter, prefix_pruning=prefix_pruning, backend=backend
        )
