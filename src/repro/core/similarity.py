"""Spatial and textual similarity functions (Definitions 1 and 2).

These are the *exact* similarities used in verification; the signature
similarities used in filtering live with their signature schemes.  The
module also exposes Dice/Cosine textual variants for the extension hooks
the paper's conclusion calls out.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Iterable

from repro.geometry import Rect
from repro.geometry.rect import spatial_dice as _spatial_dice
from repro.geometry.rect import spatial_jaccard as _spatial_jaccard
from repro.text.weights import TokenWeighter


def spatial_similarity(a: Rect, b: Rect) -> float:
    """Spatial Jaccard ``|a∩b| / |a∪b|`` (Definition 1)."""
    return _spatial_jaccard(a, b)


def spatial_dice_similarity(a: Rect, b: Rect) -> float:
    """Spatial Dice ``2|a∩b| / (|a|+|b|)`` (extension mentioned in Sec. 2.1)."""
    return _spatial_dice(a, b)


def textual_similarity(
    a: AbstractSet[str],
    b: AbstractSet[str],
    weighter: TokenWeighter,
) -> float:
    """Weighted Jaccard ``Σ_{t∈a∩b} w(t) / Σ_{t∈a∪b} w(t)`` (Definition 2).

    Empty-vs-empty is defined as 1.0 (identical token sets), empty vs
    non-empty as 0.0.  A corpus-wide token has weight 0 and is neutral.
    """
    if not a and not b:
        return 1.0
    inter = a & b
    inter_weight = weighter.total_weight(inter)
    union_weight = (
        weighter.total_weight(a) + weighter.total_weight(b) - inter_weight
    )
    if union_weight <= 0.0:
        # All tokens have zero idf (every token is in every object): the
        # sets are indistinguishable to the weighting, call them identical.
        return 1.0
    return inter_weight / union_weight


def textual_dice_similarity(
    a: AbstractSet[str],
    b: AbstractSet[str],
    weighter: TokenWeighter,
) -> float:
    """Weighted Dice ``2Σ_{a∩b} w / (Σ_a w + Σ_b w)``."""
    if not a and not b:
        return 1.0
    inter_weight = weighter.total_weight(a & b)
    denom = weighter.total_weight(a) + weighter.total_weight(b)
    if denom <= 0.0:
        return 1.0
    return 2.0 * inter_weight / denom


def textual_cosine_similarity(
    a: AbstractSet[str],
    b: AbstractSet[str],
    weighter: TokenWeighter,
) -> float:
    """Weighted Cosine ``Σ_{a∩b} w² / sqrt(Σ_a w² · Σ_b w²)``.

    Treats each set as a binary vector scaled by token weights, the common
    set-cosine used by the string-similarity literature the paper cites.
    """
    if not a and not b:
        return 1.0
    inter = a & b
    num = sum(weighter.weight(t) ** 2 for t in inter)
    denom_a = sum(weighter.weight(t) ** 2 for t in a)
    denom_b = sum(weighter.weight(t) ** 2 for t in b)
    denom = math.sqrt(denom_a * denom_b)
    if denom <= 0.0:
        return 1.0 if not (a ^ b) else 0.0
    return num / denom


def token_overlap_weight(
    a: AbstractSet[str],
    b: Iterable[str],
    weighter: TokenWeighter,
) -> float:
    """``Σ_{t ∈ a∩b} w(t)`` — the textual *signature similarity* (Sec. 3.2)."""
    return sum(weighter.weight(t) for t in b if t in a)
