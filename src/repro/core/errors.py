"""Exception hierarchy for the SEAL library.

A single root (:class:`SealError`) lets callers catch everything the
library raises deliberately, while the subclasses distinguish user errors
(bad query/threshold) from configuration errors (unknown method name,
inconsistent index parameters).
"""

from __future__ import annotations


class SealError(Exception):
    """Root of all errors raised deliberately by the repro library."""


class InvalidQueryError(SealError, ValueError):
    """A query's thresholds or payload are outside the supported domain."""


class ConfigurationError(SealError, ValueError):
    """An engine/index was configured with inconsistent parameters."""


class IndexBuildError(SealError, RuntimeError):
    """An index could not be constructed from the given corpus."""


class ServiceError(SealError, RuntimeError):
    """The serving layer could not honor a request (see subclasses)."""


class AdmissionRejected(ServiceError):
    """The service is saturated: worker pool busy and the queue full.

    Raised *loudly* at submit time instead of queueing unboundedly —
    back-pressure is the client's signal to retry later or shed load.
    """


class DeadlineExceeded(ServiceError):
    """A request's deadline passed before a worker could start it."""


class ReplicationError(ServiceError):
    """The replication plane could not keep a replica aligned.

    Raised on divergence (a lineage marker the primary's log cannot
    serve, a shipped frame failing its checksum, replay drift) — the
    loud signal that a replica must re-bootstrap from a checkpoint
    snapshot rather than keep serving answers of unknown provenance.
    """


class ProtocolError(ServiceError):
    """A network frame violated the wire protocol, or the peer vanished.

    Raised on both sides of the socket: servers reject truncated,
    oversized, or undecodable frames with it (then close the
    connection — framing cannot resynchronise after garbage), and
    clients raise it when a connection dies mid-response (a recycled
    or crashed worker) — loudly, never by inventing an answer.
    """
