"""SEAL core: data model, similarity functions, engine facade.

This package holds the paper's primary contribution — the
filter-and-verification framework (Algorithm 1, ``SealSig``) — plus the
public entry points a downstream user touches:

* :class:`~repro.core.objects.SpatioTextualObject` / :class:`~repro.core.objects.Query`
* :func:`~repro.core.similarity.spatial_similarity` / :func:`~repro.core.similarity.textual_similarity`
* :class:`~repro.core.engine.SealSearch` and :func:`~repro.core.engine.build_method`
"""

from repro.core.objects import Query, SpatioTextualObject
from repro.core.similarity import (
    spatial_similarity,
    textual_similarity,
)
from repro.core.stats import SearchResult, SearchStats

__all__ = [
    "Query",
    "SpatioTextualObject",
    "SearchResult",
    "SearchStats",
    "spatial_similarity",
    "textual_similarity",
]
