"""Per-query instrumentation: what a filter probed, retrieved, verified.

The paper evaluates methods by elapsed time *and* (in the technical
report) candidate counts.  Every search method in this library fills a
:class:`SearchStats` so benchmarks can report both, and so tests can assert
filtering-power relationships (e.g. hybrid candidates ⊆ grid candidates).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List


@dataclass(slots=True)
class SearchStats:
    """Counters filled during one ``search`` call.

    Attributes:
        lists_probed: Inverted lists (or tree nodes) visited by the filter.
        entries_retrieved: Posting entries read from those lists — for
            threshold-bounded lists this is the binary-search cut point
            (the qualifying head length), the honest probe cost.
        entries_matched: Retrieved entries that passed *every* per-posting
            bound check.  Equals ``entries_retrieved`` for single-bound
            lists; for dual-bound hybrid lists it is the post-textual-mask
            count, so ``retrieved - matched`` measures how much work the
            second bound column rejects.  Identical across index storage
            backends (both derive it from the same cut points).
        candidates: Size of the candidate set handed to verification.
        results: Number of final answers.
        filter_seconds: Wall time spent in the filter step.
        verify_seconds: Wall time spent in the verification step.
        method: Which search method produced these counters.  The
            execution pipeline stamps the method's registry name; the
            planner refines it to ``planned:<chosen>``; fan-out engines
            label the merged aggregate and keep the per-source labels in
            ``per_source``.
        per_source: For fan-out engines (segments + write buffer): one
            stats entry per probed source, in source order, each carrying
            its own ``method`` label — so planner training rows and
            observability stay attributable after the counters are
            summed.  Empty for single-index engines, and deliberately
            *not* accumulated by :meth:`merge` (workload totals would
            otherwise grow one entry per query).
    """

    lists_probed: int = 0
    entries_retrieved: int = 0
    entries_matched: int = 0
    candidates: int = 0
    results: int = 0
    filter_seconds: float = 0.0
    verify_seconds: float = 0.0
    method: str = ""
    per_source: List["SearchStats"] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.filter_seconds + self.verify_seconds

    def copy(self) -> "SearchStats":
        """An independent copy (executors merge into copies, never share)."""
        return SearchStats(
            lists_probed=self.lists_probed,
            entries_retrieved=self.entries_retrieved,
            entries_matched=self.entries_matched,
            candidates=self.candidates,
            results=self.results,
            filter_seconds=self.filter_seconds,
            verify_seconds=self.verify_seconds,
            method=self.method,
            per_source=[source.copy() for source in self.per_source],
        )

    def merge(self, other: "SearchStats") -> None:
        """Accumulate another query's counters into this one (workload totals).

        ``method`` keeps this aggregate's own label and ``per_source`` is
        left untouched: cross-query totals sum counters, they do not
        concatenate per-source breakdowns.
        """
        self.lists_probed += other.lists_probed
        self.entries_retrieved += other.entries_retrieved
        self.entries_matched += other.entries_matched
        self.candidates += other.candidates
        self.results += other.results
        self.filter_seconds += other.filter_seconds
        self.verify_seconds += other.verify_seconds


@dataclass(slots=True)
class SearchResult:
    """Answer oids plus the instrumentation for one query.

    Attributes:
        answers: oids of objects satisfying both thresholds, ascending.
        stats: The per-query counters.
    """

    answers: List[int]
    stats: SearchStats

    def copy(self) -> "SearchResult":
        """An independent copy: fresh answer list, fresh stats.

        The serving layer's result cache stores and serves copies so two
        clients never alias one mutable stats object (subclasses such as
        :class:`~repro.exec.sharded.ShardedSearchResult` copy down to a
        plain ``SearchResult``; per-shard breakdowns are not cached).
        """
        return SearchResult(answers=list(self.answers), stats=self.stats.copy())

    def __iter__(self):
        return iter(self.answers)

    def __len__(self) -> int:
        return len(self.answers)

    def __contains__(self, oid: int) -> bool:
        return oid in set(self.answers)


class Stopwatch:
    """Tiny perf_counter wrapper so timing reads as prose in the filters.

    Examples:
        >>> watch = Stopwatch()
        >>> elapsed = watch.lap()   # seconds since construction or last lap
    """

    __slots__ = ("_last",)

    def __init__(self) -> None:
        self._last = time.perf_counter()

    def lap(self) -> float:
        now = time.perf_counter()
        elapsed = now - self._last
        self._last = now
        return elapsed
