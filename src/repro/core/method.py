"""The common search-method interface (Algorithm 1, ``SealSig``).

Every search strategy in the library — the four SEAL signature filters and
the four baselines — is a :class:`SearchMethod`: it owns its index, turns
a query into a candidate oid collection (*filter step*), and delegates the
*verification step* to the shared :class:`~repro.core.verification.Verifier`.
``search`` wires the two steps together with timing instrumentation.
"""

from __future__ import annotations

import abc
from typing import Collection, Sequence

from repro.core.objects import Corpus, Query, SpatioTextualObject
from repro.core.stats import SearchResult, SearchStats, Stopwatch
from repro.core.verification import Verifier
from repro.index.storage import IndexSizeReport
from repro.text.weights import TokenWeighter


class SearchMethod(abc.ABC):
    """Filter-and-verification search over a fixed corpus.

    Args:
        objects: The corpus; oids must be dense and in order (as produced
            by :func:`repro.core.objects.make_corpus`).
        weighter: Corpus idf statistics; built from the corpus when omitted
            so that ad-hoc use stays one-liner simple.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
    ) -> None:
        self.corpus = objects if isinstance(objects, Corpus) else Corpus(objects)
        if weighter is None:
            weighter = TokenWeighter(obj.tokens for obj in self.corpus)
        self.weighter = weighter
        self.verifier = Verifier(self.corpus, weighter)

    # ------------------------------------------------------------------
    # The two framework steps
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        """Filter step: a superset of the answer oids (Step 1, Sec. 3.1)."""

    def search(self, query: Query) -> SearchResult:
        """Filter, then verify; answers come back sorted by oid."""
        stats = SearchStats()
        watch = Stopwatch()
        candidate_oids = self.candidates(query, stats)
        stats.filter_seconds = watch.lap()
        stats.candidates = len(candidate_oids)
        answers = self.verifier.verify(query, candidate_oids, stats)
        stats.verify_seconds = watch.lap()
        answers.sort()
        return SearchResult(answers=answers, stats=stats)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_size(self) -> IndexSizeReport | None:
        """Byte-accounting report for Table 1; None when not applicable."""
        return None

    def all_oids(self) -> range:
        """Every oid — the degenerate candidate set for vacuous thresholds."""
        return range(len(self.corpus))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(|O|={len(self.corpus)})"
