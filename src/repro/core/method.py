"""The common search-method interface (Algorithm 1, ``SealSig``).

Every search strategy in the library — the four SEAL signature filters and
the four baselines — is a :class:`SearchMethod`: it owns its index, turns
a query into a candidate oid collection (*filter step*), and delegates the
*verification step* to the shared :class:`~repro.core.verification.Verifier`.
``search`` delegates the wiring of the two steps to the execution
pipeline (:func:`repro.exec.pipeline.execute_query`), so batching and
sharding executors can drive any method through the exact same path.
"""

from __future__ import annotations

import abc
from typing import Collection, Sequence

from repro.core.objects import Corpus, Query, SpatioTextualObject
from repro.core.stats import SearchResult, SearchStats
from repro.core.verification import Verifier
from repro.exec.pipeline import execute_query
from repro.index.storage import IndexSizeReport
from repro.text.weights import TokenWeighter


class SearchMethod(abc.ABC):
    """Filter-and-verification search over a fixed corpus.

    Args:
        objects: The corpus; oids must be dense and in order (as produced
            by :func:`repro.core.objects.make_corpus`).
        weighter: Corpus idf statistics; built from the corpus when omitted
            so that ad-hoc use stays one-liner simple.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
    ) -> None:
        self.corpus = objects if isinstance(objects, Corpus) else Corpus(objects)
        if weighter is None:
            weighter = TokenWeighter(obj.tokens for obj in self.corpus)
        self.weighter = weighter
        self.verifier = Verifier(self.corpus, weighter)

    # ------------------------------------------------------------------
    # The two framework steps
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        """Filter step: a superset of the answer oids (Step 1, Sec. 3.1)."""

    def search(self, query: Query) -> SearchResult:
        """Filter, then verify; answers come back sorted by oid.

        One query through the canonical execution pipeline; use an
        executor from :mod:`repro.exec` for batched or sharded workloads.
        """
        return execute_query(self, query)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_size(self) -> IndexSizeReport | None:
        """Byte-accounting report for Table 1; None when not applicable."""
        return None

    def all_oids(self) -> range:
        """Every oid — the degenerate candidate set for vacuous thresholds."""
        return range(len(self.corpus))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(|O|={len(self.corpus)})"
