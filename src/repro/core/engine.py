"""The user-facing engine: one constructor for every search method.

:func:`build_method` is the registry-backed factory the benchmarks drive;
:class:`SealSearch` is the convenience facade a downstream application
uses — build once from ``(region, tokens)`` pairs, then query with
regions, token iterables and thresholds without touching internal types.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Sequence

from repro.baselines.irtree import IRTreeSearch
from repro.baselines.keyword_first import KeywordFirstSearch
from repro.baselines.naive import NaiveSearch
from repro.baselines.spatial_first import SpatialFirstSearch
from repro.core.errors import ConfigurationError
from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject, make_corpus
from repro.core.stats import SearchResult
from repro.exec.batch import BatchExecutor, BatchResult
from repro.filters.grid_filter import GridFilter
from repro.filters.hierarchical_filter import HierarchicalFilter
from repro.filters.hybrid_filter import HybridFilter
from repro.filters.token_filter import TokenFilter
from repro.geometry import Rect
from repro.text.weights import TokenWeighter

def _build_planned(objects, weighter=None, **params) -> SearchMethod:
    """Registry wrapper for the query planner.

    Deferred import: the planner lives in :mod:`repro.exec.planner` and
    itself calls :func:`build_method` to assemble its method portfolio,
    so a top-level import here would cycle.
    """
    from repro.exec.planner import PlannedSealSearch

    return PlannedSealSearch(objects, weighter, **params)


#: method name -> constructor; every constructor accepts
#: (objects, weighter=None, **params).
METHOD_REGISTRY: Dict[str, Callable[..., SearchMethod]] = {
    "naive": NaiveSearch,
    "keyword-first": KeywordFirstSearch,
    "spatial-first": SpatialFirstSearch,
    "irtree": IRTreeSearch,
    "token": TokenFilter,
    "grid": GridFilter,
    "hash-hybrid": HybridFilter,
    "seal": HierarchicalFilter,
    "planned": _build_planned,
}


def build_method(
    objects: Sequence[SpatioTextualObject],
    name: str,
    weighter: TokenWeighter | None = None,
    **params,
) -> SearchMethod:
    """Construct a search method by registry name.

    Args:
        objects: The corpus (dense oids).
        name: One of ``naive``, ``keyword-first``, ``spatial-first``,
            ``irtree``, ``token``, ``grid``, ``hash-hybrid``, ``seal``,
            ``planned`` (cost-model dispatch over a method portfolio).
        weighter: Shared idf statistics; building several methods over the
            same corpus with one weighter keeps similarity semantics (and
            work) shared.
        **params: Method-specific knobs (``granularity``, ``mt``,
            ``num_buckets``, ``max_entries``, …), all keyword-only on the
            constructors, so any registry entry builds with one uniform
            call — executors rely on that.

    Raises:
        ConfigurationError: For unknown method names.
    """
    try:
        ctor = METHOD_REGISTRY[name]
    except KeyError:
        valid = ", ".join(sorted(METHOD_REGISTRY))
        raise ConfigurationError(f"unknown method {name!r}; valid methods: {valid}") from None
    return ctor(objects, weighter, **params)


class SealSearch:
    """High-level spatio-textual similarity search over ROI data.

    Args:
        data: ``(region, tokens)`` pairs describing the ROIs.
        method: Search method name (default: the paper's best, ``seal``).
        **params: Passed through to the method constructor.

    Examples:
        >>> engine = SealSearch([
        ...     (Rect(0, 0, 10, 10), {"coffee", "mocha"}),
        ...     (Rect(40, 40, 50, 50), {"tea"}),
        ... ], method="token")
        >>> result = engine.search(Rect(1, 1, 9, 9), {"coffee"}, tau_r=0.2, tau_t=0.3)
        >>> list(result)
        [0]
    """

    def __init__(
        self,
        data: Iterable[tuple[Rect, Iterable[str]]],
        method: str = "seal",
        **params,
    ) -> None:
        self.objects = make_corpus(data)
        if not self.objects:
            raise ConfigurationError("SealSearch requires at least one object")
        self.weighter = TokenWeighter(obj.tokens for obj in self.objects)
        self.method = build_method(self.objects, method, self.weighter, **params)

    def search(
        self,
        region: Rect,
        tokens: Iterable[str],
        tau_r: float,
        tau_t: float,
    ) -> SearchResult:
        """Find all objects with ``simR ≥ tau_r`` and ``simT ≥ tau_t``."""
        query = Query(region=region, tokens=frozenset(tokens), tau_r=tau_r, tau_t=tau_t)
        return self.method.search(query)

    def search_query(self, query: Query) -> SearchResult:
        """Search with a prebuilt :class:`~repro.core.objects.Query`."""
        return self.method.search(query)

    def search_batch(
        self, queries: Sequence[Query], *, executor: BatchExecutor | None = None
    ) -> BatchResult:
        """Run many queries with shared per-batch setup.

        Answers are identical to calling :meth:`search_query` per query;
        the batch executor amortises verification scratch across the
        batch and aggregates a :class:`~repro.exec.batch.BatchStats`.

        Args:
            queries: Prebuilt queries, executed in order.
            executor: Override the default :class:`BatchExecutor` (e.g.
                to disable vectorised verification).
        """
        batcher = executor if executor is not None else BatchExecutor()
        return batcher.run(self.method, list(queries))

    def object(self, oid: int) -> SpatioTextualObject:
        """Resolve an answer oid back to its object."""
        return self.objects[oid]

    def similarities(self, query: Query, oid: int) -> tuple[float, float]:
        """The exact (spatial, textual) similarities of one object."""
        from repro.core.similarity import spatial_similarity, textual_similarity

        obj = self.objects[oid]
        return (
            spatial_similarity(query.region, obj.region),
            textual_similarity(query.tokens, obj.tokens, self.weighter),
        )

    def __len__(self) -> int:
        return len(self.objects)
