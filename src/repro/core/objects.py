"""The ROI data model: spatio-textual objects and queries (Section 2.1).

An object ``o = (R, T)`` pairs an MBR region with a token set; a query
additionally carries the two similarity thresholds ``τR`` and ``τT``.
Objects are immutable value types — every index in the library keys them
by their integer ``oid``, assigned densely at corpus construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Iterator, Sequence

from repro.core.errors import InvalidQueryError
from repro.geometry import Rect


@dataclass(frozen=True, slots=True)
class SpatioTextualObject:
    """A region-of-interest: MBR region + token set (Definition in Sec. 2.1).

    Attributes:
        oid: Dense integer identifier within its corpus.
        region: The object's MBR ``o.R``.
        tokens: The textual description ``o.T`` as a frozen token set.
    """

    oid: int
    region: Rect
    tokens: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.oid < 0:
            raise ValueError("object oid must be non-negative")
        # Normalise any iterable of tokens into a frozenset so equality and
        # hashing behave as a value type.
        if not isinstance(self.tokens, frozenset):
            object.__setattr__(self, "tokens", frozenset(self.tokens))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        toks = ",".join(sorted(self.tokens)[:4])
        more = "…" if len(self.tokens) > 4 else ""
        return f"Object(o{self.oid}, {self.region.as_tuple()}, {{{toks}{more}}})"


@dataclass(frozen=True, slots=True)
class Query:
    """A spatio-textual similarity search query ``q = (R, T, τR, τT)``.

    Attributes:
        region: Query region ``q.R``.
        tokens: Query token set ``q.T``.
        tau_r: Spatial similarity threshold ``τR`` in [0, 1].
        tau_t: Textual similarity threshold ``τT`` in [0, 1].
    """

    region: Rect
    tokens: FrozenSet[str]
    tau_r: float
    tau_t: float

    def __post_init__(self) -> None:
        if not isinstance(self.tokens, frozenset):
            object.__setattr__(self, "tokens", frozenset(self.tokens))
        if not (0.0 <= self.tau_r <= 1.0):
            raise InvalidQueryError(f"tau_r must be in [0, 1], got {self.tau_r}")
        if not (0.0 <= self.tau_t <= 1.0):
            raise InvalidQueryError(f"tau_t must be in [0, 1], got {self.tau_t}")

    def with_thresholds(self, tau_r: float | None = None, tau_t: float | None = None) -> "Query":
        """A copy with one or both thresholds replaced (used by sweeps)."""
        return Query(
            region=self.region,
            tokens=self.tokens,
            tau_r=self.tau_r if tau_r is None else tau_r,
            tau_t=self.tau_t if tau_t is None else tau_t,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        toks = ",".join(sorted(self.tokens)[:4])
        more = "…" if len(self.tokens) > 4 else ""
        return (
            f"Query({self.region.as_tuple()}, {{{toks}{more}}}, "
            f"tau_r={self.tau_r}, tau_t={self.tau_t})"
        )


def make_corpus(
    regions_and_tokens: Iterable[tuple[Rect, Iterable[str]]],
) -> list[SpatioTextualObject]:
    """Assign dense oids to ``(region, tokens)`` pairs, in input order.

    Examples:
        >>> objs = make_corpus([(Rect(0, 0, 1, 1), {"tea"})])
        >>> objs[0].oid
        0
    """
    return [
        SpatioTextualObject(oid, region, frozenset(tokens))
        for oid, (region, tokens) in enumerate(regions_and_tokens)
    ]


class Corpus(Sequence[SpatioTextualObject]):
    """An immutable, oid-addressable collection of objects.

    Wraps a list so that ``corpus[oid]`` is guaranteed to return the object
    with that oid (the constructor validates density), which every filter
    relies on when it turns candidate oids back into objects.
    """

    __slots__ = ("_objects",)

    def __init__(self, objects: Sequence[SpatioTextualObject]) -> None:
        for i, obj in enumerate(objects):
            if obj.oid != i:
                raise ValueError(
                    f"Corpus requires dense oids in order; position {i} has oid {obj.oid}"
                )
        self._objects = list(objects)

    def __getitem__(self, oid):  # type: ignore[override]
        return self._objects[oid]

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[SpatioTextualObject]:
        return iter(self._objects)

    def regions(self) -> list[Rect]:
        return [obj.region for obj in self._objects]

    def token_sets(self) -> list[FrozenSet[str]]:
        return [obj.tokens for obj in self._objects]
