"""The verification step (``Sig-Verify``, Figure 3).

Verification computes the *exact* spatial and textual similarities of each
candidate and keeps those meeting both thresholds.  It is the complexity
bottleneck the signature filters exist to shrink (Section 6.3), so the
implementation precomputes per-object token-weight totals once and does
the per-candidate work with raw rectangle arithmetic.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchStats
from repro.text.weights import TokenWeighter


class Verifier:
    """Exact threshold checks over candidate oids.

    Args:
        corpus: Objects addressable by oid (``corpus[oid].oid == oid``).
        weighter: Corpus idf statistics.
    """

    __slots__ = ("corpus", "weighter", "_token_totals")

    def __init__(self, corpus: Sequence[SpatioTextualObject], weighter: TokenWeighter) -> None:
        self.corpus = corpus
        self.weighter = weighter
        self._token_totals = [weighter.total_weight(obj.tokens) for obj in corpus]

    def verify(self, query: Query, candidates: Iterable[int], stats: SearchStats | None = None) -> List[int]:
        """oids among ``candidates`` with ``simR ≥ τR`` and ``simT ≥ τT``.

        The spatial check runs first — it is a handful of float ops, while
        the textual check intersects token sets.
        """
        if hasattr(candidates, "tolist"):
            # Columnar filters hand over int64 arrays; convert once so the
            # loop sees plain ints (faster indexing, and answers never
            # leak NumPy scalar types to callers or snapshots).
            candidates = candidates.tolist()
        q_rect = query.region
        q_area = q_rect.area
        q_tokens = query.tokens
        q_total = self.weighter.total_weight(q_tokens)
        tau_r, tau_t = query.tau_r, query.tau_t
        weight = self.weighter.weight
        totals = self._token_totals
        corpus = self.corpus
        answers: List[int] = []
        for oid in candidates:
            obj = corpus[oid]
            region = obj.region
            inter = q_rect.intersection_area(region)
            union = q_area + region.area - inter
            if union > 0.0:
                if inter < tau_r * union:
                    continue
            elif q_rect != region and tau_r > 0.0:
                # Two degenerate regions: similar only when identical.
                continue
            inter_w = sum(weight(t) for t in obj.tokens & q_tokens)
            union_w = q_total + totals[oid] - inter_w
            if union_w > 0.0:
                if inter_w < tau_t * union_w:
                    continue
            # union_w == 0 means the token sets are indistinguishable to
            # the weighting: simT = 1 ≥ any τT.
            answers.append(oid)
        if stats is not None:
            stats.results = len(answers)
        return answers

    def verify_pair(self, query: Query, obj: SpatioTextualObject) -> bool:
        """Exact check for one object (convenience for tests/examples)."""
        return bool(self.verify(query, [obj.oid]))
