"""Batched query execution with shared per-batch setup.

Running a workload query-by-query pays per-query overheads — and, much
more importantly, verifies every candidate with per-object Python
arithmetic.  :class:`BatchExecutor` amortises work across the batch:

* a per-method *scratch* (corpus rectangle coordinates, areas and token
  weight totals packed into NumPy arrays) is built once and reused by
  every query in the batch — and cached across batches per method;
* with the columnar index backend the *filter* step is vectorised too:
  probes return zero-copy CSR head views, each query's candidate union
  runs through the method's single reusable
  :class:`~repro.index.columnar.CandidateScratch` buffer (allocated once,
  epoch-reset per query across the whole batch), and the resulting int64
  candidate array flows into verification without re-materialisation;
* verification of each query's candidate set runs the spatial check
  vectorised over all candidates at once, falling back to the exact
  per-object textual check only for the spatial survivors;
* stats aggregate into one :class:`BatchStats` alongside the per-query
  :class:`~repro.core.stats.SearchResult` objects.

The vectorised verification replicates
:meth:`repro.core.verification.Verifier.verify` operation-for-operation
in float64, so batched answers are guaranteed identical to per-query
answers — the invariant ``tests/test_exec_batch.py`` pins for every
registry method.  When NumPy is unavailable the executor degrades to the
scalar verifier and still aggregates batch stats.
"""

from __future__ import annotations

import time
import weakref
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Sequence

from repro.core.objects import Query
from repro.core.stats import SearchResult, SearchStats
from repro.core.verification import Verifier
from repro.exec.pipeline import Executor, execute_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.method import SearchMethod

try:  # pragma: no cover - exercised implicitly by every batch test
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None


@dataclass(slots=True)
class BatchStats:
    """Aggregate instrumentation for one batch run.

    Attributes:
        queries: Number of queries executed.
        totals: Sum of every per-query :class:`SearchStats`.
        elapsed_seconds: Wall time for the whole batch, including shared
            scratch setup (so throughput numbers stay honest).
    """

    queries: int = 0
    totals: SearchStats = field(default_factory=SearchStats)
    elapsed_seconds: float = 0.0

    @property
    def qps(self) -> float:
        """Queries per second over the batch wall time."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.queries / self.elapsed_seconds

    @property
    def mean_ms(self) -> float:
        """Mean wall milliseconds per query."""
        if self.queries == 0:
            return 0.0
        return 1000.0 * self.elapsed_seconds / self.queries


@dataclass(slots=True)
class BatchResult:
    """Per-query results plus the batch aggregate.

    Iterating yields the per-query :class:`SearchResult` objects in input
    order, so ``[r.answers for r in batch]`` lines up with the queries.
    """

    results: List[SearchResult]
    stats: BatchStats

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> SearchResult:
        return self.results[index]

    def answers(self) -> List[List[int]]:
        """The per-query answer lists, in input order."""
        return [result.answers for result in self.results]


class _VectorVerifier:
    """Vectorised drop-in for :class:`Verifier` over one method's corpus.

    The spatial threshold check mirrors ``Verifier.verify`` exactly:
    identical float64 operations applied elementwise, including the
    degenerate zero-union branch, so the surviving oid set is identical
    bit-for-bit.  The textual check then runs the *same* per-object
    Python arithmetic as the scalar verifier, only over the (much
    smaller) spatial survivor set.

    Candidate sets below ``min_candidates`` delegate to the scalar
    verifier outright — array setup would cost more than it saves.
    """

    __slots__ = (
        "corpus", "weighter", "scalar", "totals", "min_candidates",
        "x1", "y1", "x2", "y2", "areas",
    )

    def __init__(self, verifier: Verifier, min_candidates: int = 32) -> None:
        self.corpus = verifier.corpus
        self.weighter = verifier.weighter
        self.scalar = verifier.verify
        self.totals = verifier._token_totals
        self.min_candidates = min_candidates
        n = len(verifier.corpus)
        self.x1 = _np.empty(n, dtype=_np.float64)
        self.y1 = _np.empty(n, dtype=_np.float64)
        self.x2 = _np.empty(n, dtype=_np.float64)
        self.y2 = _np.empty(n, dtype=_np.float64)
        for i, obj in enumerate(verifier.corpus):
            region = obj.region
            self.x1[i] = region.x1
            self.y1[i] = region.y1
            self.x2[i] = region.x2
            self.y2[i] = region.y2
        self.areas = (self.x2 - self.x1) * (self.y2 - self.y1)

    def verify(self, query: Query, candidates, stats: SearchStats | None = None) -> List[int]:
        n = len(candidates)
        if n < self.min_candidates:
            return self.scalar(query, candidates, stats)
        if isinstance(candidates, _np.ndarray):
            # Columnar filters already hand over an integer candidate
            # array — fancy indexing takes it as-is, so the handoff is
            # genuinely zero-copy (astype to intp would copy int32).
            oids = candidates
        else:
            oids = _np.fromiter(candidates, dtype=_np.intp, count=n)
        q_rect = query.region
        qx1, qy1, qx2, qy2 = q_rect.x1, q_rect.y1, q_rect.x2, q_rect.y2
        q_area = q_rect.area
        tau_r = query.tau_r
        x1 = self.x1[oids]
        y1 = self.y1[oids]
        x2 = self.x2[oids]
        y2 = self.y2[oids]
        dx = _np.minimum(qx2, x2) - _np.maximum(qx1, x1)
        dy = _np.minimum(qy2, y2) - _np.maximum(qy1, y1)
        inter = dx * dy
        inter[(dx <= 0.0) | (dy <= 0.0)] = 0.0
        union = (q_area + self.areas[oids]) - inter
        # Mirror Verifier.verify: positive union compares inter against
        # tau_r*union; zero union (two degenerate regions) passes only
        # when the rectangles are identical or tau_r is vacuous.
        mask = inter >= tau_r * union
        degenerate = union <= 0.0
        if degenerate.any():
            if tau_r > 0.0:
                mask[degenerate] = (
                    (x1[degenerate] == qx1) & (y1[degenerate] == qy1)
                    & (x2[degenerate] == qx2) & (y2[degenerate] == qy2)
                )
            else:
                mask[degenerate] = True
        survivors = oids[mask].tolist()

        q_tokens = query.tokens
        q_total = self.weighter.total_weight(q_tokens)
        tau_t = query.tau_t
        weight = self.weighter.weight
        totals = self.totals
        corpus = self.corpus
        answers: List[int] = []
        for oid in survivors:
            obj = corpus[oid]
            inter_w = sum(weight(t) for t in obj.tokens & q_tokens)
            union_w = q_total + totals[oid] - inter_w
            if union_w > 0.0 and inter_w < tau_t * union_w:
                continue
            answers.append(oid)
        if stats is not None:
            stats.results = len(answers)
        return answers


#: Per-method scratch cache.  Weak keys so a discarded method releases its
#: arrays; kept module-level (not on the method) so engine snapshots never
#: pickle scratch buffers.
_SCRATCH: "weakref.WeakKeyDictionary[SearchMethod, _VectorVerifier]" = weakref.WeakKeyDictionary()


def _scratch_for(method: "SearchMethod", min_candidates: int) -> _VectorVerifier:
    scratch = _SCRATCH.get(method)
    if scratch is None or scratch.min_candidates != min_candidates:
        scratch = _VectorVerifier(method.verifier, min_candidates)
        _SCRATCH[method] = scratch
    return scratch


class BatchExecutor(Executor):
    """Run a query batch through one method with shared setup.

    Args:
        vectorized: Use the NumPy verification scratch when available
            (answers are identical either way; this only changes speed).
        min_vector_candidates: Candidate sets smaller than this verify
            through the scalar path — array setup isn't worth it.
    """

    def __init__(self, *, vectorized: bool = True, min_vector_candidates: int = 32) -> None:
        self.vectorized = vectorized
        self.min_vector_candidates = min_vector_candidates

    def run(self, method: "SearchMethod", queries: Sequence[Query]) -> BatchResult:
        # Segmented engines are not one method but a fan-out of them;
        # they publish ``batch_fanout`` and this executor drives each of
        # their sources (segments + write buffer) through the normal
        # batched path below, so batch workloads survive churn.
        fanout = getattr(method, "batch_fanout", None)
        if fanout is not None:
            return fanout(queries, executor=self)
        queries = list(queries)
        started = time.perf_counter()
        verify = None
        if self.vectorized and _np is not None and queries:
            verify = _scratch_for(method, self.min_vector_candidates).verify
        results = [execute_query(method, query, verify=verify) for query in queries]
        elapsed = time.perf_counter() - started
        totals = SearchStats()
        for result in results:
            totals.merge(result.stats)
        return BatchResult(
            results=results,
            stats=BatchStats(queries=len(queries), totals=totals, elapsed_seconds=elapsed),
        )
