"""The execution layer: how queries run, separate from what filters compute.

* :mod:`repro.exec.pipeline` — the canonical filter→verify pipeline
  (``execute_query``) and the :class:`Executor` interface with the
  reference :class:`SerialExecutor`.
* :mod:`repro.exec.batch` — :class:`BatchExecutor`: batches share scratch
  (vectorised verification buffers) and aggregate :class:`BatchStats`.
* :mod:`repro.exec.partition` — corpus partitioning policies for sharding.
* :mod:`repro.exec.sharded` — :class:`ShardedSealSearch`: K per-shard
  indexes behind one facade, answers identical to the unsharded engine.
* :mod:`repro.exec.segments` — :class:`SegmentedSealSearch`: the
  updatable engine (write buffer + immutable segments + tombstones with
  size-tiered merges), searches fanned over segments through the same
  pipeline.
* :mod:`repro.exec.durable` — :class:`DurableSegmentedSealSearch`: the
  segmented engine behind a write-ahead log — mutations logged before
  applied, checkpoint/recovery via ``snapshot + WAL tail``.
* :mod:`repro.exec.planner` — :class:`PlannedSealSearch`: per-query
  cost-model dispatch over a portfolio of answer-identical methods, with
  a record→fit→serve calibration loop and planner decision metrics.

Every executor preserves exact answer semantics: batching and sharding
change *throughput*, never results.
"""

from repro.exec.batch import BatchExecutor, BatchResult, BatchStats
from repro.exec.partition import PARTITION_POLICIES, get_partition_policy
from repro.exec.pipeline import Executor, SerialExecutor, execute_query

__all__ = [
    "BatchExecutor",
    "BatchResult",
    "BatchStats",
    "DurableSegmentedSealSearch",
    "Executor",
    "PARTITION_POLICIES",
    "PlannedSealSearch",
    "PlannerMetrics",
    "SegmentedSealSearch",
    "SerialExecutor",
    "ShardedSealSearch",
    "ShardedSearchResult",
    "collect_planner_metrics",
    "execute_query",
    "fit_coefficients",
    "get_partition_policy",
    "recover",
    "shutdown_shared_pool",
]

#: Names resolved lazily (PEP 562): ``sharded`` imports the engine, which
#: imports the method base class, which imports this package — so eager
#: import here would cycle.  Lazy resolution breaks the loop.
_LAZY = {
    "DurableSegmentedSealSearch": "repro.exec.durable",
    "PlannedSealSearch": "repro.exec.planner",
    "PlannerMetrics": "repro.exec.planner",
    "SegmentedSealSearch": "repro.exec.segments",
    "collect_planner_metrics": "repro.exec.planner",
    "fit_coefficients": "repro.exec.planner",
    "ShardedSealSearch": "repro.exec.sharded",
    "ShardedSearchResult": "repro.exec.sharded",
    "recover": "repro.exec.durable",
    "shutdown_shared_pool": "repro.exec.sharded",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
