"""Crash-safe segmented engine: WAL-logged mutations + checkpoint/recovery.

The segmented engine (:mod:`repro.exec.segments`) keeps its write
buffer, tombstones and segment layout purely in memory between explicit
snapshot saves, so a crash loses every acknowledged mutation since the
last save.  :class:`DurableSegmentedSealSearch` closes that hole with
the standard write-ahead-logging contract:

* **Log before apply.**  Every mutation (``insert``, ``delete``,
  ``flush`` → ``seal``, ``compact``) is appended to the WAL *before* it
  touches the engine.  Once ``append`` returns under the chosen sync
  policy, the operation survives a crash; replay applies it on
  recovery.  (A crash in the tiny window between append and apply can
  make recovery include an operation the caller never saw acknowledged —
  the standard at-least-once edge of logging-before-applying; the
  reverse — an acknowledged operation lost — cannot happen.)  If the
  *apply* raises while the process survives, the appended record is
  rolled back off the log tail, keeping log ≡ engine for the caller
  that just saw the error.
* **Checkpoint = snapshot + log truncation.**  :meth:`checkpoint`
  fsyncs the WAL, records its ``(generation, offset)`` into the format-5
  snapshot envelope, durably saves the snapshot, and only then resets
  the log to ``generation + 1``.  Recovery aligns the two files on that
  pair, so a crash at *any* instant inside the checkpoint leaves a
  recoverable state and replay never double-applies (see
  :mod:`repro.io.wal` for the alignment rule).
* **Recovery is exact.**  :func:`recover` rebuilds ``snapshot + WAL
  tail`` by replaying operations in their original order.  Buffer
  seals, size-tiered merges and weighter-refresh (full compaction)
  points are all deterministic functions of that order, so the
  recovered engine reproduces the pre-crash engine's segment layout
  *and* idf-weighter state — its answers are pinned identical to the
  pre-crash engine's, and (via the engine's own invariant) to a
  from-scratch ``build_method`` oracle over the live set.

Known loud-failure window: a crash *between the sidecar and snapshot
writes of a checkpoint* leaves the previous snapshot paired with the
new sidecar.  The envelope's array fingerprints reject that pairing, so
recovery raises :class:`~repro.io.snapshot.SnapshotError` rather than
serving wrong arrays — operator intervention (restore the matching
sidecar or rebuild) is required.  Crash injection tests pin both the
exact-recovery points and this loud failure.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Union

from repro.exec.segments import SegmentedSealSearch
from repro.geometry import Rect
from repro.io.snapshot import load_engine, save_engine, validate_snapshot
from repro.io.wal import DEFAULT_GROUP_SIZE, WALError, WriteAheadLog, read_wal

PathLike = Union[str, Path]


def _engine_from_config(config: Dict) -> SegmentedSealSearch:
    """An empty engine with the knobs a WAL config record describes."""
    params = dict(config.get("params") or {})
    return SegmentedSealSearch(
        method=config["method"],
        buffer_capacity=config["buffer_capacity"],
        merge_fanout=config["merge_fanout"],
        **params,
    )


def engine_from_config(config: Dict) -> SegmentedSealSearch:
    """An empty segmented engine matching a WAL/replication config record.

    The public face of the bootstrap path: a replication replica with no
    snapshot to ship starts from exactly the engine the primary's WAL
    config record describes, then replays the stream — the same
    construction :func:`recover` uses for a wal-only recovery.
    """
    return _engine_from_config(config)


def apply_record(engine: SegmentedSealSearch, payload: Dict, *, source: Any = "stream") -> None:
    """Replay one WAL operation record onto ``engine``.

    The replay-from-stream hook: replication replicas feed shipped
    records through this so a streamed apply is *bit-identical* to a
    crash recovery's replay of the same log — oid determinism is
    verified the same way, and an unknown or drifted record raises
    :class:`~repro.io.wal.WALError` loudly (the caller re-bootstraps
    rather than serving wrong answers).

    Args:
        engine: The segmented engine to mutate (the *raw* engine — the
            stream is already a log, so logging again would double it).
        payload: One decoded record (``{"op": ..., ...}``).
        source: A label for error messages (a path or peer name).
    """
    _apply(engine, payload, path=source)


def replay_records(
    engine: SegmentedSealSearch, payloads: Iterable[Dict], *, source: Any = "stream"
) -> int:
    """Replay a run of records in order; returns how many applied.

    ``config`` records (a log's self-description) are skipped, matching
    :meth:`repro.io.wal.WALContents.operations` — everything else goes
    through :func:`apply_record`.
    """
    applied = 0
    for payload in payloads:
        if payload.get("op") == "config":
            continue
        apply_record(engine, payload, source=source)
        applied += 1
    return applied


def _apply(engine: SegmentedSealSearch, payload: Dict, *, path: Any) -> None:
    """Replay one logged operation onto ``engine``, verifying determinism."""
    op = payload["op"]
    if op == "insert":
        oid = engine.insert(Rect(*payload["region"]), frozenset(payload["tokens"]))
        if oid != payload["oid"]:
            raise WALError(
                f"{path}: replay drift — insert produced oid {oid} but the log "
                f"recorded oid {payload['oid']}; snapshot and WAL are not from "
                "the same lineage"
            )
    elif op == "delete":
        engine.delete(payload["oid"])
    elif op == "seal":
        engine.flush()
    elif op == "compact":
        engine.compact()
    else:
        raise WALError(f"{path}: unknown WAL operation {op!r}")


class DurableSegmentedSealSearch:
    """A :class:`SegmentedSealSearch` whose mutations are write-ahead
    logged (see the module docstring for the durability contract).

    Facade-compatible with the wrapped engine: every read-side method
    (``search``, ``search_query``, ``search_batch``, ``batch_fanout``,
    ``object``, ``len``, stats/introspection properties) delegates
    untouched, so the wrapper drops into :class:`~repro.service.manager.
    EngineManager`, :class:`~repro.exec.batch.BatchExecutor` and the CLI
    exactly like the raw engine.  Mutations are intercepted and logged
    first.

    Build one with :meth:`create` (fresh engine + fresh WAL + initial
    checkpoint) or :func:`recover` (reconstruct from disk); the plain
    constructor wraps an engine and an open WAL you already aligned.
    """

    def __init__(
        self,
        engine: SegmentedSealSearch,
        wal: WriteAheadLog,
        *,
        snapshot_path: Optional[PathLike] = None,
        recovery: Optional[Dict] = None,
    ) -> None:
        if not isinstance(engine, SegmentedSealSearch):
            raise WALError(
                f"the durability layer wraps SegmentedSealSearch, got "
                f"{type(engine).__name__}"
            )
        self._engine = engine
        self._wal = wal
        self._snapshot_path = Path(snapshot_path) if snapshot_path is not None else None
        # The sealed (shippable) watermark: log position after the last
        # mutation whose *apply* completed.  Between an append and its
        # apply the log runs ahead of the engine, and an apply failure
        # rolls the record back off the tail — replication must never
        # ship inside that window, or a replica could replay an
        # operation the primary never acknowledged.  One tuple, replaced
        # atomically, so readers on other threads see a consistent pair.
        self._stable = (wal.generation, wal.position)
        #: The :func:`recover` report that produced this engine, or None.
        self.recovery = recovery

    @classmethod
    def create(
        cls,
        data: Iterable[tuple] = (),
        method: str = "seal",
        *,
        wal_path: PathLike,
        snapshot_path: PathLike,
        sync: str = "always",
        group_size: int = DEFAULT_GROUP_SIZE,
        buffer_capacity: "int | None" = 256,
        merge_fanout: int = 4,
        **params,
    ) -> "DurableSegmentedSealSearch":
        """A fresh durable engine, durable from birth.

        Builds the segmented engine over ``data``, creates a generation-0
        WAL (refusing to clobber an existing one), and immediately
        checkpoints — initial data reaches the snapshot rather than the
        log, so the constructor's full-compaction weighter semantics are
        captured exactly and recovery never re-derives them from inserts.
        """
        engine = SegmentedSealSearch(
            data,
            method,
            buffer_capacity=buffer_capacity,
            merge_fanout=merge_fanout,
            **params,
        )
        wal = WriteAheadLog.create(
            wal_path, config=engine.config(), sync=sync, group_size=group_size
        )
        durable = cls(engine, wal, snapshot_path=snapshot_path)
        durable.checkpoint()
        return durable

    # ------------------------------------------------------------------
    # Mutations: log first, then apply
    # ------------------------------------------------------------------

    def _logged(self, record: Dict, apply):
        """Append ``record``, then run ``apply()``.

        If the apply raises while the process is still alive, the
        just-appended record is rolled back off the log tail: the
        operation was never acknowledged, and leaving it would make a
        later crash replay a mutation the live engine never performed
        (silently diverging from every answer served since).  A crash
        *inside* the window keeps the record — replay applies it — the
        documented at-least-once edge.
        """
        offset = self._wal.append(record)
        try:
            result = apply()
        except BaseException:
            self._wal.rollback(offset)
            raise
        self._stable = (self._wal.generation, self._wal.position)
        return result

    def insert(self, region: Rect, tokens: Iterable[str]) -> int:
        """Log then apply one insert; returns the global oid."""
        tokens = frozenset(tokens)
        oid = self._engine.next_oid
        applied = self._logged(
            {
                "op": "insert",
                "oid": oid,
                "region": list(region.as_tuple()),
                "tokens": sorted(tokens),
            },
            lambda: self._engine.insert(region, tokens),
        )
        if applied != oid:  # pragma: no cover - engine invariant
            raise WALError(
                f"engine assigned oid {applied} after logging oid {oid}; "
                "the oid sequence is no longer deterministic"
            )
        return applied

    def delete(self, oid: int) -> bool:
        """Log then apply one delete; returns whether ``oid`` was live.

        Deletes of non-live oids are logged too (the log must be written
        before the liveness answer exists); replaying them is a no-op,
        exactly like the original call.
        """
        return self._logged(
            {"op": "delete", "oid": oid}, lambda: self._engine.delete(oid)
        )

    def flush(self) -> None:
        """Log then apply a buffer seal (merges may cascade, identically
        on replay — sealing is deterministic in the op order)."""
        self._logged({"op": "seal"}, self._engine.flush)

    def compact(self) -> None:
        """Log then apply a full compaction (a weighter-refresh point;
        replay reproduces it at the same position in the op order)."""
        self._logged({"op": "compact"}, self._engine.compact)

    # ------------------------------------------------------------------
    # Checkpoint
    # ------------------------------------------------------------------

    def checkpoint(self, path: Optional[PathLike] = None) -> Path:
        """Durably snapshot the engine and truncate the WAL.

        Ordering is the whole point: (1) fsync the WAL so its
        ``(generation, position)`` names a durable prefix; (2) durably
        save the snapshot carrying that position; (3) only then reset
        the log.  A crash after (2) leaves the old log aligned by
        offset; a crash before it leaves the old snapshot aligned by
        generation — recovery never double-applies either way.

        Answer-preserving by construction (the engine is untouched), so
        the serving layer runs checkpoints under its *shared* lock and
        cached results stay valid.

        Returns the snapshot path written.
        """
        target = Path(path) if path is not None else self._snapshot_path
        if target is None:
            raise WALError(
                "no snapshot path: pass checkpoint(path) or construct the "
                "durable engine with snapshot_path"
            )
        self._wal.sync()
        position = {
            "generation": self._wal.generation,
            "offset": self._wal.position,
        }
        save_engine(self._engine, target, wal_position=position)
        # The fresh log names the checkpoint it continues: recovery only
        # treats a generation+1 WAL as this snapshot's tail when the
        # markers match, so checkpointing a shared WAL against another
        # snapshot path can never silently orphan this one.
        self._wal.reset(parent=position)
        self._stable = (self._wal.generation, self._wal.position)
        self._snapshot_path = target
        return target

    def close(self) -> None:
        """Sync and release the WAL (idempotent).  The engine stays
        queryable; further mutations raise against the closed log."""
        self._wal.close()

    def __enter__(self) -> "DurableSegmentedSealSearch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Delegation and introspection
    # ------------------------------------------------------------------

    @property
    def engine(self) -> SegmentedSealSearch:
        """The wrapped segmented engine (reads may use it directly)."""
        return self._engine

    @property
    def wal(self) -> WriteAheadLog:
        return self._wal

    @property
    def snapshot_path(self) -> Optional[Path]:
        """Default checkpoint destination (the last one written)."""
        return self._snapshot_path

    @property
    def stable_position(self) -> Dict[str, int]:
        """The sealed ``{"generation", "offset"}`` replication may ship
        through — every record before it was applied and acknowledged
        (never subject to a rollback)."""
        generation, offset = self._stable
        return {"generation": generation, "offset": offset}

    def __len__(self) -> int:
        return len(self._engine)

    def __getattr__(self, name: str) -> Any:
        # Read-side facade: everything not intercepted above delegates to
        # the engine (search paths, stats, manifest, weighter, ...).
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.__dict__["_engine"], name)

    def __getstate__(self):
        raise TypeError(
            "DurableSegmentedSealSearch does not pickle (it owns an open WAL "
            "handle); persist it with checkpoint() and reopen with recover()"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DurableSegmentedSealSearch(live={len(self._engine)}, "
            f"wal={str(self._wal.path)!r}, generation={self._wal.generation}, "
            f"sync={self._wal.sync_policy!r})"
        )


def recover(
    snapshot_path: PathLike,
    wal_path: PathLike,
    *,
    sync: str = "always",
    group_size: int = DEFAULT_GROUP_SIZE,
    mmap: bool = False,
    strict: bool = False,
) -> DurableSegmentedSealSearch:
    """Reconstruct the pre-crash engine from ``snapshot + WAL tail``.

    Alignment (see :mod:`repro.io.wal` for why this is exhaustive):

    * snapshot exists, WAL at the snapshot's generation → replay records
      past the checkpoint offset (the post-snapshot tail);
    * snapshot exists, WAL one generation ahead → the checkpoint's reset
      completed; replay the whole log;
    * no snapshot, WAL at generation 0 → bootstrap an empty engine from
      the WAL's config record and replay everything;
    * anything else — missing snapshot after a checkpoint truncated the
      log, generation gaps, a snapshot without a WAL position, a
      non-segmented snapshot, fsynced bytes missing — fails loudly
      (:class:`~repro.io.wal.WALError` /
      :class:`~repro.io.snapshot.SnapshotError`) instead of guessing.

    A torn tail (crash mid-append) is truncated away and reported in the
    returned engine's ``recovery`` dict; pass ``strict=True`` to fail
    loudly on it instead.

    Args:
        snapshot_path: The checkpoint snapshot (may not exist yet).
        wal_path: The write-ahead log.
        sync: Sync policy for the *reopened* WAL going forward.
        group_size: Group-commit size under ``sync="batch"``.
        mmap: Memory-map the snapshot's array sidecar.
        strict: Refuse torn tails instead of truncating them.

    Returns:
        The recovered durable engine; ``recovery`` holds the replay
        report (``source``, ``records_replayed``, ``generation``,
        ``torn_bytes_dropped``, ``live``).
    """
    snapshot_path = Path(snapshot_path)
    wal_path = Path(wal_path)
    contents = read_wal(wal_path)
    if strict and contents.torn:
        raise WALError(
            f"{wal_path} ends in {contents.trailing_bytes} torn bytes and "
            "strict recovery was requested"
        )
    if snapshot_path.exists():
        source = "snapshot+wal"
        info = validate_snapshot(snapshot_path)
        position = info.get("wal")
        if position is None:
            raise WALError(
                f"snapshot {snapshot_path} was not written by a WAL checkpoint "
                f"(no WAL position in its envelope); cannot align replay of "
                f"{wal_path} — rebuild with the durability layer enabled"
            )
        engine = load_engine(snapshot_path, mmap=mmap)
        if not isinstance(engine, SegmentedSealSearch):
            raise WALError(
                f"snapshot {snapshot_path} holds {type(engine).__name__}, not a "
                "segmented engine; the durability layer cannot replay onto it"
            )
        config = contents.config
        if config is not None and config.get("method") != engine.config()["method"]:
            raise WALError(
                f"WAL {wal_path} logs a {config.get('method')!r} engine but "
                f"snapshot {snapshot_path} holds {engine.config()['method']!r}; "
                "these files are not from the same lineage"
            )
        generation, offset = position["generation"], position["offset"]
        if contents.generation == generation:
            # The checkpoint's reset never completed: skip the prefix the
            # snapshot already holds.  That prefix was fsynced before the
            # snapshot was written, so it must still parse in full.
            if contents.good_end < offset:
                raise WALError(
                    f"{wal_path} is intact only to byte {contents.good_end} but "
                    f"the checkpoint fsynced through byte {offset}; "
                    "acknowledged operations are unrecoverable"
                )
            start = offset
        elif contents.generation == generation + 1:
            # The reset completed — but only this snapshot's own
            # checkpoint may claim it.  A shared WAL checkpointed
            # against a different snapshot path also sits one
            # generation ahead; its parent marker names the *other*
            # checkpoint, and silently replaying the (empty) log here
            # would drop this snapshot's acknowledged tail.
            parent = contents.parent_checkpoint
            if parent != position:
                raise WALError(
                    f"WAL {wal_path} was reset by checkpoint {parent}, not by "
                    f"snapshot {snapshot_path}'s checkpoint {position}; the "
                    "snapshot's post-checkpoint operations were checkpointed "
                    "elsewhere and cannot be replayed from this log"
                )
            start = 0  # post-checkpoint log: everything replays
        else:
            raise WALError(
                f"WAL {wal_path} is at generation {contents.generation} but "
                f"snapshot {snapshot_path} checkpointed generation {generation}; "
                "these files are not from the same lineage"
            )
    else:
        source = "wal-only"
        if contents.generation != 0:
            raise WALError(
                f"snapshot {snapshot_path} is missing but WAL {wal_path} was "
                f"truncated at a checkpoint (generation {contents.generation}); "
                "operations before that checkpoint are unrecoverable"
            )
        config = contents.config
        if config is None:
            raise WALError(
                f"WAL {wal_path} holds no engine-config record and no snapshot "
                "exists; nothing to replay onto"
            )
        engine = _engine_from_config(config)
        start = 0
    replayed = 0
    for record in contents.operations(start):
        _apply(engine, record.payload, path=wal_path)
        replayed += 1
    # Reuse the scan above: open() would otherwise re-read and re-CRC
    # the whole log just to find the truncation point.
    wal = WriteAheadLog.open(wal_path, sync=sync, group_size=group_size,
                             contents=contents)
    report = {
        "source": source,
        "records_replayed": replayed,
        "generation": contents.generation,
        "torn_bytes_dropped": contents.trailing_bytes,
        "live": len(engine),
    }
    return DurableSegmentedSealSearch(
        engine, wal, snapshot_path=snapshot_path, recovery=report
    )
