"""Sharded execution: K independent per-shard indexes behind one facade.

:class:`ShardedSealSearch` partitions the corpus into K shards (policies
in :mod:`repro.exec.partition`), builds an independent index per shard,
fans each query out over a ``concurrent.futures`` thread pool, and merges
the per-shard answers back to global oids.

Two properties make sharded answers *identical* to the unsharded engine:

* **One corpus-global ``TokenWeighter``** is built from the full corpus
  and shared by every shard, so idf weights — and therefore textual
  similarities and thresholds — are exactly those of the unsharded
  engine.  (Spatial similarity is pure geometry and needs no sharing.)
* **Exact verification per shard**: each shard's filter only ever
  over-approximates its own objects' answers, and the shared verifier
  semantics then accept exactly the globally-correct subset.  The union
  over shards is therefore the global answer set, oid-for-oid.

Merged per-query stats sum the work counters across shards and take the
**maximum** per-shard filter/verify seconds — the parallel critical path,
which is the number that should shrink as K grows.  Per-shard stats ride
along on the result for benchmarks that want the full distribution.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.core.engine import build_method
from repro.core.errors import ConfigurationError
from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject, make_corpus
from repro.core.stats import SearchResult, SearchStats
from repro.exec.batch import BatchExecutor, BatchResult, BatchStats
from repro.exec.partition import get_partition_policy
from repro.exec.pipeline import execute_query
from repro.geometry import Rect
from repro.index.storage import IndexSizeReport
from repro.text.weights import TokenWeighter

#: One process-wide pool shared by every sharded engine: shards are
#: short-lived independent tasks, and a shared pool avoids spawning (and
#: leaking) threads per engine instance.
_POOL: ThreadPoolExecutor | None = None


def _shared_pool() -> ThreadPoolExecutor:
    global _POOL
    if _POOL is None:
        _POOL = ThreadPoolExecutor(
            max_workers=max(4, os.cpu_count() or 1), thread_name_prefix="seal-shard"
        )
    return _POOL


def shutdown_shared_pool() -> None:
    """Tear down the shared shard pool (tests / clean interpreter exit)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=True)
        _POOL = None


@dataclass(slots=True)
class ShardedSearchResult(SearchResult):
    """A merged answer plus the per-shard stats behind it.

    ``stats`` sums work counters over shards and carries the critical-path
    (max-over-shards) filter/verify seconds; ``per_shard`` keeps each
    shard's own counters for scaling analysis.
    """

    per_shard: List[SearchStats]


class _Shard:
    """One shard: a method over re-oided objects plus the oid mapping."""

    __slots__ = ("method", "to_global")

    def __init__(self, method: SearchMethod, to_global: List[int]) -> None:
        self.method = method
        self.to_global = to_global


def _merge_shard_results(
    shard_results: Sequence[SearchResult], shards: Sequence[_Shard]
) -> ShardedSearchResult:
    answers: List[int] = []
    per_shard: List[SearchStats] = []
    merged = SearchStats()
    for shard, result in zip(shards, shard_results):
        to_global = shard.to_global
        answers.extend(to_global[oid] for oid in result.answers)
        per_shard.append(result.stats)
        merged.merge(result.stats)
    # Counters sum; elapsed time is the parallel critical path.
    merged.filter_seconds = max((s.filter_seconds for s in per_shard), default=0.0)
    merged.verify_seconds = max((s.verify_seconds for s in per_shard), default=0.0)
    answers.sort()
    merged.results = len(answers)
    return ShardedSearchResult(answers=answers, stats=merged, per_shard=per_shard)


class ShardedSealSearch:
    """Spatio-textual search over a corpus partitioned into K shards.

    Drop-in facade-compatible with :class:`~repro.core.engine.SealSearch`
    (``search``, ``search_query``, ``search_batch``, ``object``,
    ``similarities``, ``len``), with answers guaranteed identical to the
    unsharded engine.

    Args:
        data: ``(region, tokens)`` pairs describing the ROIs.
        method: Registry method name built per shard (default ``seal``).
        shards: Number of partitions K (empty partitions are skipped).
        partition: Policy name from
            :data:`repro.exec.partition.PARTITION_POLICIES`.
        max_workers: Cap for a private thread pool; ``None`` (default)
            uses the process-wide shared pool.
        **params: Method constructor knobs, passed to every shard.

    Examples:
        >>> engine = ShardedSealSearch(
        ...     [(Rect(0, 0, 10, 10), {"coffee"}), (Rect(40, 40, 50, 50), {"tea"})],
        ...     method="token", shards=2,
        ... )
        >>> list(engine.search(Rect(1, 1, 9, 9), {"coffee"}, tau_r=0.2, tau_t=0.3))
        [0]
    """

    def __init__(
        self,
        data: Iterable[tuple[Rect, Iterable[str]]],
        method: str = "seal",
        *,
        shards: int = 2,
        partition: str = "round-robin",
        max_workers: int | None = None,
        **params,
    ) -> None:
        policy = get_partition_policy(partition)
        self.objects = make_corpus(data)
        if not self.objects:
            raise ConfigurationError("ShardedSealSearch requires at least one object")
        self.method_name = method
        self.shards = shards
        self.partition = partition
        self.params = dict(params)
        # The corpus-global weighter: every shard shares it, so similarity
        # semantics match the unsharded engine exactly.
        self.weighter = TokenWeighter(obj.tokens for obj in self.objects)
        self._shards: List[_Shard] = []
        for oids in policy(self.objects, shards):
            if not oids:
                continue
            local_objects = [
                SpatioTextualObject(i, self.objects[oid].region, self.objects[oid].tokens)
                for i, oid in enumerate(oids)
            ]
            shard_method = build_method(local_objects, method, self.weighter, **params)
            self._shards.append(_Shard(shard_method, list(oids)))
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _executor_pool(self) -> ThreadPoolExecutor:
        if self._max_workers is None:
            return _shared_pool()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="seal-shard"
            )
        return self._pool

    def _fan_out(self, task, *args) -> List:
        """Run ``task(shard, *args)`` for every shard, in the pool."""
        if len(self._shards) == 1:
            return [task(self._shards[0], *args)]
        pool = self._executor_pool()
        futures = [pool.submit(task, shard, *args) for shard in self._shards]
        return [future.result() for future in futures]

    def search_query(self, query: Query) -> ShardedSearchResult:
        """Fan one query out to every shard and merge global-oid answers."""
        shard_results = self._fan_out(
            lambda shard, q: execute_query(shard.method, q), query
        )
        return _merge_shard_results(shard_results, self._shards)

    def search(
        self,
        region: Rect,
        tokens: Iterable[str],
        tau_r: float,
        tau_t: float,
    ) -> ShardedSearchResult:
        """Find all objects with ``simR ≥ tau_r`` and ``simT ≥ tau_t``."""
        query = Query(region=region, tokens=frozenset(tokens), tau_r=tau_r, tau_t=tau_t)
        return self.search_query(query)

    def search_batch(
        self, queries: Sequence[Query], *, executor: BatchExecutor | None = None
    ) -> BatchResult:
        """Run a batch against every shard and merge per-query answers.

        Each shard processes the whole batch with the batch executor's
        shared scratch; merging then happens once per query.
        """
        queries = list(queries)
        batcher = executor if executor is not None else BatchExecutor()
        started = time.perf_counter()
        shard_batches: List[BatchResult] = self._fan_out(
            lambda shard, qs: batcher.run(shard.method, qs), queries
        )
        results: List[SearchResult] = [
            _merge_shard_results([batch.results[i] for batch in shard_batches], self._shards)
            for i in range(len(queries))
        ]
        elapsed = time.perf_counter() - started
        totals = SearchStats()
        for result in results:
            totals.merge(result.stats)
        return BatchResult(
            results=results,
            stats=BatchStats(queries=len(queries), totals=totals, elapsed_seconds=elapsed),
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def object(self, oid: int) -> SpatioTextualObject:
        """Resolve an answer oid back to its (global) object."""
        return self.objects[oid]

    def similarities(self, query: Query, oid: int) -> tuple[float, float]:
        """The exact (spatial, textual) similarities of one object."""
        from repro.core.similarity import spatial_similarity, textual_similarity

        obj = self.objects[oid]
        return (
            spatial_similarity(query.region, obj.region),
            textual_similarity(query.tokens, obj.tokens, self.weighter),
        )

    def index_size(self) -> IndexSizeReport | None:
        """Summed per-shard index accounting; None if any shard lacks it."""
        reports = [shard.method.index_size() for shard in self._shards]
        if any(report is None for report in reports):
            return None
        return IndexSizeReport(
            num_lists=sum(r.num_lists for r in reports),
            num_postings=sum(r.num_postings for r in reports),
            directory_bytes=sum(r.directory_bytes for r in reports),
            posting_bytes=sum(r.posting_bytes for r in reports),
            page_bytes=sum(r.page_bytes for r in reports),
        )

    @property
    def num_shards(self) -> int:
        """Shards actually built (≤ the requested K for tiny corpora)."""
        return len(self._shards)

    def shard_sizes(self) -> List[int]:
        return [len(shard.to_global) for shard in self._shards]

    def close(self) -> None:
        """Shut down the private pool, if any (the shared pool persists)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __len__(self) -> int:
        return len(self.objects)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedSealSearch(|O|={len(self.objects)}, method={self.method_name!r}, "
            f"shards={self.num_shards}/{self.shards}, partition={self.partition!r})"
        )

    # Thread pools cannot be pickled; snapshots rebuild them lazily.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_pool"] = None
        return state
