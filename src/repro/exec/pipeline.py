"""The query execution pipeline: filter → verify → stats, as data flow.

Historically every :class:`~repro.core.method.SearchMethod` hardwired the
two framework steps inside ``search``.  This module lifts that wiring out
into a reusable pipeline so *how* queries execute (one at a time, in
batches with shared scratch, fanned out over shards) is a property of an
:class:`Executor` object, while the methods keep owning only *what* the
filter step computes.

``execute_query`` is the canonical single-query pipeline —
``SearchMethod.search`` delegates to it — and accepts an optional
``verify`` callable so executors can substitute equivalent-but-faster
verification (e.g. the batch executor's vectorised spatial check) without
touching any method.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Collection, List, Sequence

from repro.core.objects import Query
from repro.core.stats import SearchResult, SearchStats, Stopwatch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.method import SearchMethod

#: Signature of a verification callable: ``(query, candidate_oids, stats)
#: -> answer oids``.  Must set ``stats.results`` and produce exactly the
#: answers of :meth:`repro.core.verification.Verifier.verify`.
VerifyFn = Callable[[Query, Collection[int], SearchStats], List[int]]


def execute_query(
    method: "SearchMethod",
    query: Query,
    *,
    verify: VerifyFn | None = None,
) -> SearchResult:
    """Run one query through the filter-and-verify pipeline.

    Args:
        method: The search method supplying the filter step (its
            ``candidates``) and, by default, the verification step (its
            ``verifier``).
        query: The query to execute.
        verify: Optional verification override; must return exactly the
            oids the method's own verifier would.

    Returns:
        The answers (sorted by oid) plus filled :class:`SearchStats`.
    """
    stats = SearchStats(method=getattr(method, "name", type(method).__name__))
    watch = Stopwatch()
    # ``candidates`` may refine the label (the planner stamps the method
    # it dispatched to), so it is set before — never after — the filter.
    candidate_oids = method.candidates(query, stats)
    stats.filter_seconds = watch.lap()
    stats.candidates = len(candidate_oids)
    if verify is None:
        verify = method.verifier.verify
    answers = verify(query, candidate_oids, stats)
    stats.verify_seconds = watch.lap()
    answers.sort()
    return SearchResult(answers=answers, stats=stats)


class Executor(abc.ABC):
    """How a sequence of queries runs against one search method.

    Executors are stateless with respect to any particular method or
    corpus: the same executor instance can drive any method, and the
    answers must be identical to running ``method.search`` per query.
    """

    @abc.abstractmethod
    def run(self, method: "SearchMethod", queries: Sequence[Query]):
        """Execute ``queries`` against ``method``; see subclasses for the
        concrete return type (a list of results, or a batch aggregate)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialExecutor(Executor):
    """The reference executor: one query at a time, no shared state.

    Exists so tests and benchmarks have a named baseline to compare the
    optimised executors against.
    """

    def run(self, method: "SearchMethod", queries: Sequence[Query]) -> List[SearchResult]:
        return [execute_query(method, query) for query in queries]
