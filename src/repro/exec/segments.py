"""Segmented updatable engine: immutable segments + write buffer (LSM-style).

SEAL's signatures are corpus-dependent (idf weights, cell orders, HSS
partitions), so the static indexes cannot absorb writes in place.  The
first-generation answer (``repro.extensions.updates``) rebuilt the whole
index once a delta pool outgrew a threshold — O(n) work per rebuild,
no deletes, and no empty bootstrap.  This module replaces it with the
standard streaming-systems design (FAST, Mahmood et al.):

* **Write buffer** — inserts append to a small in-memory pool that is
  scanned *exactly* at query time (the pool is bounded, so this is
  cheap and always answer-correct);
* **Immutable segments** — when the buffer reaches ``buffer_capacity``
  it is *sealed*: a full index (any registry method, either storage
  backend, reusing the columnar freeze path) is built over just those
  objects;
* **Tombstones** — deletes mark a global oid dead; dead oids are masked
  out of every answer and physically dropped the next time a merge
  touches their segment;
* **Size-tiered merges** — whenever ``merge_fanout`` segments occupy the
  same size tier they are compacted into one (live objects only).  Every
  object is therefore rebuilt O(log n) times over its lifetime instead
  of O(n / threshold) times, which is what makes sustained insert
  throughput possible.

Searches fan out across segments plus the buffer through the canonical
:func:`~repro.exec.pipeline.execute_query` pipeline and merge per-source
:class:`~repro.core.stats.SearchStats` into one (counters and times sum
— the fan-out is serial, so summed seconds are the honest cost).

**Weighter semantics (idf drift).**  One engine-global
:class:`~repro.text.weights.TokenWeighter` is shared by every segment
*and* by verification, so all answers are internally consistent at all
times.  The weighter snapshots the live corpus at *full compaction
points* (construction over initial data, :meth:`compact`, or any merge
that leaves a single segment holding the entire corpus); between those
points idf weights drift from a from-scratch build — tokens inserted
since get the unknown-token maximum idf — and converge exactly at the
next compaction.  This is the same deferred-maintenance trade every
updatable text index makes, inherited from the rebuild-the-world
predecessor.  While the engine has *no* sealed segment yet (the empty
bootstrap), the live set *is* the buffer, so the weighter tracks it
exactly and there is no drift at all.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Set

from repro.baselines.naive import NaiveSearch
from repro.core.engine import build_method
from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchResult, SearchStats
from repro.exec.batch import BatchExecutor, BatchResult, BatchStats
from repro.exec.pipeline import execute_query
from repro.geometry import Rect
from repro.index.storage import IndexSizeReport
from repro.text.weights import TokenWeighter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.method import SearchMethod


def _empty_weighter() -> TokenWeighter:
    """The weighter of an engine that has never seen an object.

    ``|O| = 1`` with an empty vocabulary: every weight is 0, which is
    irrelevant (there is nothing to answer) and replaced the moment real
    data arrives.
    """
    return TokenWeighter.from_counts({}, 1)


class _Segment:
    """One immutable sealed index plus its local→global oid mapping."""

    __slots__ = ("method", "to_global")

    def __init__(self, method: "SearchMethod", to_global: List[int]) -> None:
        self.method = method
        self.to_global = to_global

    def __len__(self) -> int:
        return len(self.to_global)


class SegmentedSealSearch:
    """An updatable SEAL engine: write buffer, sealed segments, tombstones.

    Facade-compatible with :class:`~repro.core.engine.SealSearch`
    (``search``, ``search_query``, ``search_batch``, ``object``,
    ``len``) and additionally accepts :meth:`insert`, :meth:`delete`,
    :meth:`flush` and :meth:`compact`.  May start empty.

    Args:
        data: Initial ``(region, tokens)`` pairs; sealed into one segment
            (a full compaction point).  May be empty.
        method: Registry method name built per segment (default ``seal``).
        buffer_capacity: Seal the write buffer into a segment once it
            holds this many objects.  ``None`` disables auto-sealing —
            the caller then controls sealing via :meth:`flush` /
            :meth:`compact` (the rebuild-the-world shim uses this).
        merge_fanout: Merge whenever this many segments share a size
            tier (tier ``t`` holds segments of ``capacity·fanout^t`` to
            ``capacity·fanout^(t+1)`` objects).
        **params: Method constructor knobs, passed to every segment
            build (``backend=...``, ``granularity=...``, …).

    Examples:
        >>> engine = SegmentedSealSearch(method="token")   # empty bootstrap
        >>> oid = engine.insert(Rect(0, 0, 10, 10), {"coffee"})
        >>> engine.delete(oid)
        True
        >>> len(engine)
        0
    """

    def __init__(
        self,
        data: Iterable[tuple[Rect, Iterable[str]]] = (),
        method: str = "seal",
        *,
        buffer_capacity: int | None = 256,
        merge_fanout: int = 4,
        **params,
    ) -> None:
        if buffer_capacity is not None and buffer_capacity < 1:
            raise ValueError("buffer_capacity must be a positive int or None")
        if merge_fanout < 2:
            raise ValueError("merge_fanout must be at least 2")
        self._method_name = method
        self._params = dict(params)
        self.buffer_capacity = buffer_capacity
        self.merge_fanout = merge_fanout
        #: Full-compaction events (explicit or via an all-segment merge).
        self.compactions = 0
        self._live: Dict[int, SpatioTextualObject] = {}
        self._buffer: List[SpatioTextualObject] = []
        self._buffer_method: NaiveSearch | None = None
        self._tombstones: Set[int] = set()
        self._segments: List[_Segment] = []
        self._next_oid = 0
        #: True while the weighter may lag the live corpus (idf drift).
        self._weights_stale = False
        #: True while the bootstrap-phase weighter must be lazily rebuilt
        #: from the buffer on next observation (see ``weighter``).
        self._weighter_dirty = False
        self._weighter = _empty_weighter()
        initial = [
            SpatioTextualObject(oid, region, frozenset(tokens))
            for oid, (region, tokens) in enumerate(data)
        ]
        if initial:
            self._next_oid = len(initial)
            self._live = {obj.oid: obj for obj in initial}
            self._weighter = TokenWeighter(obj.tokens for obj in initial)
            self._add_segment(initial)

    @property
    def weighter(self) -> TokenWeighter:
        """The engine-global idf weighter (see the module docstring).

        During the bootstrap phase mutations only mark it dirty; the
        rebuild from the buffer happens here, on first observation
        (query, seal, or direct access) — so a burst of k unsealed
        inserts costs O(k) bookkeeping, not k weighter rebuilds.
        """
        if self._weighter_dirty:
            self._weighter = (
                TokenWeighter(obj.tokens for obj in self._buffer)
                if self._buffer
                else _empty_weighter()
            )
            self._weighter_dirty = False
        return self._weighter

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, region: Rect, tokens: Iterable[str]) -> int:
        """Add one object; returns its global oid (stable forever)."""
        oid = self._next_oid
        self._next_oid += 1
        obj = SpatioTextualObject(oid, region, frozenset(tokens))
        self._live[oid] = obj
        self._buffer.append(obj)
        self._buffer_method = None
        self._bookkeep_weights()
        if (
            self.buffer_capacity is not None
            and len(self._buffer) >= self.buffer_capacity
        ):
            self._seal_buffer()
        return oid

    def delete(self, oid: int) -> bool:
        """Tombstone one object; returns False if it was not live.

        Buffered objects are dropped outright; sealed objects stay in
        their segment until a merge physically removes them, masked out
        of every answer in the meantime.
        """
        obj = self._live.pop(oid, None)
        if obj is None:
            return False
        for i, pending in enumerate(self._buffer):
            if pending.oid == oid:
                del self._buffer[i]
                self._buffer_method = None
                break
        else:
            self._tombstones.add(oid)
        self._bookkeep_weights()
        return True

    def flush(self) -> None:
        """Seal the write buffer into a segment (merges may cascade)."""
        self._seal_buffer()

    def compact(self) -> None:
        """Merge everything into one segment and refresh idf weights.

        The full-compaction point: tombstoned objects are physically
        dropped, the weighter is rebuilt from the live corpus, and
        answers from here on exactly match a from-scratch build.
        No-op when already fully compacted and weights are fresh.
        """
        if (
            not self._weights_stale
            and not self._buffer
            and not self._tombstones
            and len(self._segments) <= 1
        ):
            return
        live = self._live_in_layout_order()
        self._segments = []
        self._buffer = []
        self._buffer_method = None
        self._tombstones = set()
        self._weighter = (
            TokenWeighter(obj.tokens for obj in live) if live else _empty_weighter()
        )
        self._weighter_dirty = False
        self._weights_stale = False
        if live:
            self._add_segment(live)
        self.compactions += 1

    # ------------------------------------------------------------------
    # Sealing and merging internals
    # ------------------------------------------------------------------

    def _bookkeep_weights(self) -> None:
        """After a mutation: track (or avoid) idf drift.

        With no sealed segment the live set *is* the buffer, so the
        weighter tracks it exactly — rebuilt lazily on observation (the
        ``weighter`` property), which keeps insert bursts O(1) per
        insert.  Once segments exist their indexes were built against
        the current weighter, which therefore must not change until the
        next full compaction — the drift trade.
        """
        if self._segments:
            self._weights_stale = True
        else:
            self._weighter_dirty = True
            self._weights_stale = False

    def _add_segment(self, objects: Sequence[SpatioTextualObject]) -> None:
        """Build an index over ``objects`` (re-oided locally) and append."""
        local = [
            SpatioTextualObject(i, obj.region, obj.tokens)
            for i, obj in enumerate(objects)
        ]
        method = build_method(local, self._method_name, self.weighter, **self._params)
        self._segments.append(_Segment(method, [obj.oid for obj in objects]))

    def _seal_buffer(self) -> None:
        if not self._buffer:
            return
        # A first seal from the bootstrap phase is itself a full
        # compaction point: force the lazy weighter rebuild *while the
        # buffer still holds the objects*, so the fresh segment carries
        # fresh weights.
        self.weighter
        sealed = self._buffer
        self._buffer = []
        self._buffer_method = None
        self._add_segment(sealed)
        self._maybe_merge()

    def _tier(self, size: int) -> int:
        base = max(1, self.buffer_capacity or 1)
        tier = 0
        while size >= base * self.merge_fanout ** (tier + 1):
            tier += 1
        return tier

    def _maybe_merge(self) -> None:
        """Size-tiered compaction: merge any tier holding ≥ fanout segments."""
        while True:
            by_tier: Dict[int, List[_Segment]] = {}
            for segment in self._segments:
                by_tier.setdefault(self._tier(len(segment)), []).append(segment)
            group = None
            for tier in sorted(by_tier):
                if len(by_tier[tier]) >= self.merge_fanout:
                    group = by_tier[tier]
                    break
            if group is None:
                return
            self._merge_group(group)

    def _merge_group(self, group: List[_Segment]) -> None:
        tombstones = self._tombstones
        live: List[SpatioTextualObject] = [
            self._live[oid]
            for segment in group
            for oid in segment.to_global
            if oid not in tombstones
        ]
        merged_all = len(group) == len(self._segments) and not self._buffer
        self._segments = [s for s in self._segments if s not in group]
        for segment in group:
            tombstones.difference_update(segment.to_global)
        if merged_all and self._weights_stale:
            # The merge output will hold the entire corpus, so refresh
            # the weighter *before* building — a free full compaction.
            self._weighter = (
                TokenWeighter(obj.tokens for obj in live)
                if live
                else _empty_weighter()
            )
            self._weighter_dirty = False
            self._weights_stale = False
            self.compactions += 1
        if live:
            self._add_segment(live)

    def _live_in_layout_order(self) -> List[SpatioTextualObject]:
        """Live objects, segments first (in segment order) then buffer."""
        tombstones = self._tombstones
        out = [
            self._live[oid]
            for segment in self._segments
            for oid in segment.to_global
            if oid not in tombstones
        ]
        out.extend(self._buffer)
        return out

    def _buffer_scan_method(self) -> NaiveSearch:
        if self._buffer_method is None:
            local = [
                SpatioTextualObject(i, obj.region, obj.tokens)
                for i, obj in enumerate(self._buffer)
            ]
            self._buffer_method = NaiveSearch(local, self.weighter)
        return self._buffer_method

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def _sources(self):
        """(method, to_global) pairs to fan a query out over."""
        sources = [(segment.method, segment.to_global) for segment in self._segments]
        if self._buffer:
            sources.append(
                (self._buffer_scan_method(), [obj.oid for obj in self._buffer])
            )
        return sources

    def _merge_source_results(
        self, results: Sequence[SearchResult], mappings: Sequence[List[int]]
    ) -> SearchResult:
        tombstones = self._tombstones
        answers: List[int] = []
        # The aggregate sums counters but keeps attribution: each source's
        # stats (with its own ``method`` label, stamped by execute_query)
        # survives in ``per_source``, so training rows and observability
        # can tell which segment index did the work.
        stats = SearchStats(method=f"segmented:{self._method_name}")
        for result, to_global in zip(results, mappings):
            stats.merge(result.stats)
            stats.per_source.append(result.stats.copy())
            answers.extend(
                oid
                for oid in (to_global[local] for local in result.answers)
                if oid not in tombstones
            )
        answers.sort()
        stats.results = len(answers)
        return SearchResult(answers=answers, stats=stats)

    def search_query(self, query: Query) -> SearchResult:
        """Fan one query over every segment plus the buffer; merge answers."""
        sources = self._sources()
        results = [execute_query(method, query) for method, _ in sources]
        return self._merge_source_results(results, [m for _, m in sources])

    def search(
        self,
        region: Rect,
        tokens: Iterable[str],
        tau_r: float,
        tau_t: float,
    ) -> SearchResult:
        """Find all live objects with ``simR ≥ tau_r`` and ``simT ≥ tau_t``."""
        query = Query(region=region, tokens=frozenset(tokens), tau_r=tau_r, tau_t=tau_t)
        return self.search_query(query)

    def batch_fanout(self, queries: Sequence[Query], *, executor: BatchExecutor) -> BatchResult:
        """The :class:`BatchExecutor` path over a segmented engine.

        Each segment (and the buffer scan) processes the whole batch with
        the executor's shared scratch; answers then merge per query with
        tombstone masking — identical to per-query :meth:`search_query`.
        """
        queries = list(queries)
        started = time.perf_counter()
        sources = self._sources()
        batches = [executor.run(method, queries) for method, _ in sources]
        mappings = [m for _, m in sources]
        results = [
            self._merge_source_results([batch.results[i] for batch in batches], mappings)
            for i in range(len(queries))
        ]
        elapsed = time.perf_counter() - started
        totals = SearchStats()
        for result in results:
            totals.merge(result.stats)
        return BatchResult(
            results=results,
            stats=BatchStats(queries=len(queries), totals=totals, elapsed_seconds=elapsed),
        )

    def search_batch(
        self, queries: Sequence[Query], *, executor: BatchExecutor | None = None
    ) -> BatchResult:
        """Run many queries with shared per-batch setup (see ``batch_fanout``)."""
        return self.batch_fanout(
            queries, executor=executor if executor is not None else BatchExecutor()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def object(self, oid: int) -> SpatioTextualObject:
        """Resolve a live oid back to its object (KeyError when deleted)."""
        try:
            return self._live[oid]
        except KeyError:
            raise KeyError(f"oid {oid} is not live (never inserted, or deleted)") from None

    def __len__(self) -> int:
        """Live objects (sealed + buffered, tombstoned excluded)."""
        return len(self._live)

    @property
    def pending(self) -> int:
        """Objects currently in the write buffer."""
        return len(self._buffer)

    @property
    def next_oid(self) -> int:
        """The oid the next :meth:`insert` will assign.

        The durability layer logs it ahead of the insert so recovery can
        verify replay assigns identical oids (oids are sequential and
        never reused, so the sequence is deterministic from the op log).
        """
        return self._next_oid

    def config(self) -> dict:
        """The constructor knobs that rebuild an equivalent empty engine.

        The write-ahead log stores this as its first record, which makes
        a WAL self-describing: recovery can bootstrap from an empty
        engine with identical sealing/merging behavior even when no
        snapshot exists yet.
        """
        return {
            "method": self._method_name,
            "buffer_capacity": self.buffer_capacity,
            "merge_fanout": self.merge_fanout,
            "params": dict(self._params),
        }

    @property
    def tombstones(self) -> int:
        """Deleted objects still physically present in a segment."""
        return len(self._tombstones)

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def segment_sizes(self) -> List[int]:
        """Physical size of each segment (tombstoned objects included)."""
        return [len(segment) for segment in self._segments]

    def segment_methods(self) -> List["SearchMethod"]:
        """The per-segment index methods, in segment order."""
        return [segment.method for segment in self._segments]

    def similarities(self, query: Query, oid: int) -> tuple[float, float]:
        """The exact (spatial, textual) similarities of one live object."""
        from repro.core.similarity import spatial_similarity, textual_similarity

        obj = self.object(oid)
        return (
            spatial_similarity(query.region, obj.region),
            textual_similarity(query.tokens, obj.tokens, self.weighter),
        )

    def index_size(self) -> IndexSizeReport | None:
        """Summed per-segment accounting; None if any segment lacks it."""
        reports = [segment.method.index_size() for segment in self._segments]
        if not reports or any(report is None for report in reports):
            return None
        return IndexSizeReport(
            num_lists=sum(r.num_lists for r in reports),
            num_postings=sum(r.num_postings for r in reports),
            directory_bytes=sum(r.directory_bytes for r in reports),
            posting_bytes=sum(r.posting_bytes for r in reports),
            page_bytes=sum(r.page_bytes for r in reports),
        )

    def snapshot_manifest(self) -> dict:
        """Segment/tombstone accounting stored in snapshot envelopes."""
        tombstones = self._tombstones
        return {
            "kind": "segmented",
            "method": self._method_name,
            "next_oid": self._next_oid,
            "live": len(self._live),
            "buffer": len(self._buffer),
            "tombstones": len(tombstones),
            "compactions": self.compactions,
            "segments": [
                {
                    "objects": len(segment),
                    "live": sum(1 for oid in segment.to_global if oid not in tombstones),
                    "tier": self._tier(len(segment)),
                }
                for segment in self._segments
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentedSealSearch(live={len(self._live)}, method={self._method_name!r}, "
            f"segments={len(self._segments)}, buffered={len(self._buffer)}, "
            f"tombstones={len(self._tombstones)})"
        )

    # The buffer-scan method is derived state; rebuild it lazily after a
    # snapshot load rather than pickling a second copy of the buffer.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_buffer_method"] = None
        return state
