"""Adaptive per-query planning: pick the cheapest filter method per query.

The paper's own experiments (Figures 12, 14, 15) show that no single
filter wins everywhere: ``TokenFilter`` dominates when the query carries
rare tokens, ``GridFilter`` when the spatial threshold bites, the hybrids
in between — the regimes cross.  Because every registry method is
*answer-identical* (each produces a candidate superset that the shared
exact :class:`~repro.core.verification.Verifier` reduces to the same
answer set), choosing between them per query is free of correctness
risk: the only thing at stake is time.

:class:`PlannedSealSearch` exploits that.  It keeps several registered
methods built over one corpus + weighter, and per query:

1. extracts **cheap features** — query region area, per-token document
   frequencies (O(1) from the :class:`~repro.text.weights.TokenWeighter`
   / posting directory), the derived thresholds ``c_T``/``c_R``, and a
   grid-cell count straight from the uniform grid's O(1) ``cell_span``;
2. turns them into per-method **work estimates** (lists probed, posting
   entries retrieved, candidates verified) mirroring each filter's probe
   structure — the same structure :func:`repro.index.iomodel.
   charge_method_io` charges pages for;
3. scores each method with the linear cost model
   ``cost = c0 + c1·lists + c2·entries + c3·candidates`` and dispatches
   to the predicted-cheapest method.

The cost coefficients start at analytic defaults (referenced against the
I/O model's page pricing collapsed to in-memory latencies) and graduate
to *fitted* values: a *recording mode* appends
``(features, predictions, observed per-method stats + wall time)`` rows
to a JSONL log via the crash-safe atomic-write helpers, and
:func:`fit_coefficients` least-squares-calibrates each method's
coefficients from those rows (NumPy only).  The workflow is
``record → fit → serve``.

Observability lives in :class:`PlannerMetrics` (per-method selection
counts, per-method latency histograms, a mispredict counter fed by
recording mode); :func:`collect_planner_metrics` aggregates every
planner hiding inside an engine (facade, segmented, sharded) into the
``planner`` block of ``QueryService.metrics_json``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Collection, Dict, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.baselines.keyword_first import KeywordFirstSearch
from repro.core.errors import ConfigurationError
from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchStats
from repro.exec.pipeline import execute_query
from repro.filters.base import SingleSchemeFilter
from repro.filters.grid_filter import GridFilter
from repro.filters.hierarchical_filter import HierarchicalFilter
from repro.filters.hybrid_filter import HybridFilter
from repro.io.atomic import atomic_write_text
from repro.service.metrics import LatencyHistogram
from repro.signatures.prefix import select_prefix
from repro.text.weights import TokenWeighter

#: The method portfolio a planner builds by default: one representative
#: per filter family the paper compares (Figures 12/14/15).
DEFAULT_METHODS: Tuple[str, ...] = ("token", "grid", "hash-hybrid", "seal")

#: Cost-model terms, in order: intercept, per probed list, per retrieved
#: posting entry, per verified candidate.
COST_TERMS: Tuple[str, ...] = ("intercept", "lists", "entries", "candidates")

#: Analytic default coefficients (seconds).  Referenced against
#: ``index/iomodel.py``'s charging rules with its page reads collapsed to
#: in-memory latencies: a probed list costs a directory lookup + head
#: slice (~µs), retrieved entries stream through vectorised unions
#: (~tens of ns), and every candidate pays one exact verification
#: (~µs).  ``fit_coefficients`` replaces these with measured values.
DEFAULT_COEFFICIENTS: Tuple[float, float, float, float] = (3e-5, 3e-6, 2e-8, 1.2e-6)

#: Recording mode rewrites the JSONL log (atomically) every this many rows.
RECORD_FLUSH_EVERY = 32


@dataclass(frozen=True, slots=True)
class MethodEstimate:
    """One method's predicted work and cost for one query.

    Attributes:
        method: Registry name of the estimated method.
        lists: Predicted inverted lists probed.
        entries: Predicted posting entries retrieved.
        candidates: Predicted candidate-set size handed to verification.
        cost: Predicted seconds under the method's cost coefficients.
    """

    method: str
    lists: float
    entries: float
    candidates: float
    cost: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "lists": round(self.lists, 2),
            "entries": round(self.entries, 2),
            "candidates": round(self.candidates, 2),
            "cost_s": self.cost,
        }


class PlannerMetrics:
    """Thread-safe planner decision counters + per-method latency.

    ``observe`` records which method won the dispatch and how long its
    filter step took; ``mispredict`` counts recording-mode queries where
    a *different* method measured cheapest end to end.  Everything
    exports as one JSON-serializable dict for the service metrics
    document.
    """

    __slots__ = ("_lock", "selections", "histograms", "mispredicts")

    def __init__(self) -> None:
        import threading

        self._lock = threading.Lock()
        self.selections: Dict[str, int] = {}
        self.histograms: Dict[str, LatencyHistogram] = {}
        self.mispredicts = 0

    def observe(self, method: str, seconds: float) -> None:
        with self._lock:
            self.selections[method] = self.selections.get(method, 0) + 1
            histogram = self.histograms.get(method)
            if histogram is None:
                histogram = self.histograms[method] = LatencyHistogram()
        histogram.observe(seconds)

    def mispredict(self) -> None:
        with self._lock:
            self.mispredicts += 1

    def merge(self, other: "PlannerMetrics") -> None:
        """Fold another planner's decisions into this aggregate."""
        with other._lock:
            selections = dict(other.selections)
            histograms = dict(other.histograms)
            mispredicts = other.mispredicts
        with self._lock:
            for method, count in selections.items():
                self.selections[method] = self.selections.get(method, 0) + count
            self.mispredicts += mispredicts
            own = {
                method: self.histograms.setdefault(method, LatencyHistogram())
                for method in histograms
            }
        for method, histogram in histograms.items():
            own[method].merge(histogram)

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            selections = dict(self.selections)
            histograms = dict(self.histograms)
            mispredicts = self.mispredicts
        latency: Dict[str, object] = {}
        for method, histogram in sorted(histograms.items()):
            snapshot = histogram.as_dict()
            latency[method] = {
                "count": snapshot["count"],
                "mean_ms": snapshot["mean_ms"],
                "p50_ms": snapshot["p50_ms"],
                "p99_ms": snapshot["p99_ms"],
            }
        return {
            "decisions": sum(selections.values()),
            "selections": dict(sorted(selections.items())),
            "mispredicts": mispredicts,
            "filter_latency_ms": latency,
        }


class PlannedSealSearch(SearchMethod):
    """Cost-model-driven dispatch over several answer-identical methods.

    Args:
        objects: The corpus (dense oids).
        weighter: Shared idf statistics (built once if omitted) — every
            sub-method and the verifier use the same instance, which is
            what makes their answers bit-identical.
        methods: Registry names to build and plan over (default
            :data:`DEFAULT_METHODS`).  At least one is required.
        coefficients: Per-method cost coefficients
            ``{name: [c0, c1, c2, c3]}``; missing methods fall back to
            the analytic defaults.  Typically produced by
            :func:`fit_coefficients`.
        record_to: JSONL path enabling *recording mode*: every query
            additionally runs each sub-method end to end and appends a
            ``(features, predictions, observations)`` training row —
            expensive by design, for offline calibration only.
        **params: Method-constructor knobs (``granularity``, ``mt``,
            ``num_buckets``, ``backend``, …), distributed to the
            sub-methods whose constructors accept them.

    Raises:
        ConfigurationError: On an empty method list or unknown names.
    """

    name = "planned"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
        *,
        methods: Sequence[str] | None = None,
        coefficients: Mapping[str, Sequence[float]] | None = None,
        record_to: str | None = None,
        **params,
    ) -> None:
        super().__init__(objects, weighter)
        names = tuple(methods) if methods is not None else DEFAULT_METHODS
        if not names:
            raise ConfigurationError("PlannedSealSearch requires at least one method")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate method names in {names}")
        from repro.core.engine import build_method

        self.methods: Dict[str, SearchMethod] = {}
        for method_name in names:
            if method_name == self.name:
                raise ConfigurationError("a planner cannot plan over itself")
            accepted = _accepted_knobs(method_name, params)
            self.methods[method_name] = build_method(
                self.corpus, method_name, self.weighter, **accepted
            )
        self.coefficients: Dict[str, List[float]] = {
            method_name: list(DEFAULT_COEFFICIENTS) for method_name in names
        }
        if coefficients:
            self.set_coefficients(coefficients)
        #: Cached mean list length per sub-index (O(lists) on the python
        #: backend, so computed once here, not per query).
        self._avg_list_len: Dict[str, float] = {
            method_name: _average_list_length(method)
            for method_name, method in self.methods.items()
        }
        self.metrics = PlannerMetrics()
        self._record_path = record_to
        self._rows: List[dict] = []

    # ------------------------------------------------------------------
    # Planning: features -> per-method work estimates -> cost ranking
    # ------------------------------------------------------------------

    def features(self, query: Query) -> Dict[str, float]:
        """The cheap per-query feature vector the estimators consume.

        Everything here is O(|q.T| log |q.T|) or better: token document
        frequencies are dictionary lookups, the region's cell count comes
        from the grid's arithmetic ``cell_span``, and no posting data is
        touched.
        """
        weighter = self.weighter
        dfs = [weighter.count(token) for token in query.tokens]
        return {
            "area": query.region.area,
            "tau_r": query.tau_r,
            "tau_t": query.tau_t,
            "num_tokens": float(len(query.tokens)),
            "df_min": float(min(dfs)) if dfs else 0.0,
            "df_max": float(max(dfs)) if dfs else 0.0,
            "df_sum": float(sum(dfs)),
            "c_t": query.tau_t * weighter.total_weight(query.tokens),
            "c_r": query.tau_r * query.region.area,
        }

    def plan(self, query: Query) -> List[MethodEstimate]:
        """Every method's estimate, cheapest first (ties keep registration
        order — the sort is stable)."""
        estimates = [
            self._estimate(method_name, method, query)
            for method_name, method in self.methods.items()
        ]
        estimates.sort(key=lambda estimate: estimate.cost)
        return estimates

    def choose(self, query: Query) -> str:
        """The registry name of the predicted-cheapest method."""
        return self.plan(query)[0].method

    def explain(self, query: Query) -> Dict[str, object]:
        """A JSON-ready account of one query's planning decision."""
        estimates = self.plan(query)
        return {
            "features": self.features(query),
            "chosen": estimates[0].method,
            "estimates": {
                estimate.method: estimate.as_dict() for estimate in estimates
            },
            "ranking": [estimate.method for estimate in estimates],
        }

    def _estimate(
        self, method_name: str, method: SearchMethod, query: Query
    ) -> MethodEstimate:
        lists, entries, candidates = _estimate_work(
            method, query, self._avg_list_len[method_name], len(self.corpus)
        )
        c0, c1, c2, c3 = self.coefficients[method_name]
        cost = c0 + c1 * lists + c2 * entries + c3 * candidates
        return MethodEstimate(
            method=method_name,
            lists=lists,
            entries=entries,
            candidates=candidates,
            cost=cost,
        )

    # ------------------------------------------------------------------
    # The filter step: dispatch to the predicted-cheapest method
    # ------------------------------------------------------------------

    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        chosen = self.plan(query)[0].method
        delegate = self.methods[chosen]
        stats.method = f"{self.name}:{chosen}"
        started = time.perf_counter()
        candidate_oids = delegate.candidates(query, stats)
        elapsed = time.perf_counter() - started
        self.metrics.observe(chosen, elapsed)
        if self._record_path is not None:
            self._record(query, chosen)
        return candidate_oids

    # ------------------------------------------------------------------
    # Recording mode and calibration (record -> fit -> serve)
    # ------------------------------------------------------------------

    def _record(self, query: Query, chosen: str) -> None:
        """One training row: run *every* method end to end, log the truth.

        Ground truth is each method's full ``execute_query`` wall time
        (filter + exact verification), which is exactly the quantity the
        cost model predicts; the mispredict counter compares the measured
        argmin against the planner's choice.
        """
        predicted: Dict[str, Dict[str, float]] = {}
        for estimate in self.plan(query):
            predicted[estimate.method] = estimate.as_dict()
        observed: Dict[str, Dict[str, float]] = {}
        best_method, best_seconds = chosen, float("inf")
        for method_name, method in self.methods.items():
            result = execute_query(method, query)
            stats = result.stats
            seconds = stats.total_seconds
            observed[method_name] = {
                "lists": stats.lists_probed,
                "entries": stats.entries_retrieved,
                "candidates": stats.candidates,
                "results": stats.results,
                "seconds": seconds,
            }
            if seconds < best_seconds:
                best_method, best_seconds = method_name, seconds
        if best_method != chosen:
            self.metrics.mispredict()
        self._rows.append(
            {
                "features": self.features(query),
                "chosen": chosen,
                "predicted": predicted,
                "observed": observed,
            }
        )
        if len(self._rows) % RECORD_FLUSH_EVERY == 0:
            self.flush_recording()

    def start_recording(self, path: str) -> None:
        """Switch recording mode on for subsequent queries.

        Loaded snapshots come up with recording off (the path is
        deliberately not persisted); the CLI's ``plan --record`` uses
        this to re-arm it.
        """
        self._record_path = path

    def flush_recording(self) -> str | None:
        """Write every recorded row to the JSONL log; returns its path.

        The whole log is rewritten through the fsync-then-rename helper,
        so a crash mid-flush leaves the previous complete log, never a
        torn one.  No-op (returns None) outside recording mode.
        """
        if self._record_path is None:
            return None
        text = "".join(json.dumps(row, sort_keys=True) + "\n" for row in self._rows)
        atomic_write_text(self._record_path, text)
        return self._record_path

    @property
    def recorded_rows(self) -> List[dict]:
        """The training rows accumulated by recording mode (live list view)."""
        return self._rows

    def fit(self, rows: Iterable[dict] | None = None) -> Dict[str, List[float]]:
        """Least-squares-calibrate this planner's coefficients in place.

        Args:
            rows: Training rows (default: this planner's own recorded
                rows).

        Returns:
            The new per-method coefficients.
        """
        fitted = fit_coefficients(
            self._rows if rows is None else rows, methods=tuple(self.methods)
        )
        self.set_coefficients(fitted)
        return fitted

    def set_coefficients(self, coefficients: Mapping[str, Sequence[float]]) -> None:
        """Install cost coefficients for (a subset of) the methods."""
        for method_name, values in coefficients.items():
            if method_name not in self.coefficients:
                continue
            values = [float(v) for v in values]
            if len(values) != len(COST_TERMS):
                raise ConfigurationError(
                    f"coefficients for {method_name!r} need {len(COST_TERMS)} "
                    f"values {COST_TERMS}, got {len(values)}"
                )
            self.coefficients[method_name] = values

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_size(self):
        """Summed accounting over the sub-method indexes (the planner's
        honest space cost: it keeps every portfolio index built)."""
        from repro.index.storage import IndexSizeReport

        reports = [method.index_size() for method in self.methods.values()]
        if not reports or any(report is None for report in reports):
            return None
        return IndexSizeReport(
            num_lists=sum(r.num_lists for r in reports),
            num_postings=sum(r.num_postings for r in reports),
            directory_bytes=sum(r.directory_bytes for r in reports),
            posting_bytes=sum(r.posting_bytes for r in reports),
            page_bytes=sum(r.page_bytes for r in reports),
        )

    def snapshot_manifest(self) -> dict:
        """Planner configuration stored in snapshot envelopes, so
        ``seal-repro inspect --json`` can show the portfolio and the
        live coefficients without loading the engine."""
        return {
            "kind": "planned",
            "methods": list(self.methods),
            "coefficients": {
                method_name: list(values)
                for method_name, values in sorted(self.coefficients.items())
            },
            "objects": len(self.corpus),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlannedSealSearch(|O|={len(self.corpus)}, "
            f"methods={list(self.methods)})"
        )

    # Metrics hold locks (unpicklable) and recording state is transient;
    # snapshots carry the portfolio + coefficients, and a loaded engine
    # starts with fresh counters and recording off.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["metrics"] = None
        state["_rows"] = []
        state["_record_path"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.metrics = PlannerMetrics()


# ----------------------------------------------------------------------
# Work estimators (mirror each filter's probe structure, O(features))
# ----------------------------------------------------------------------


def _average_list_length(method: SearchMethod) -> float:
    index = getattr(method, "index", None)
    if index is None or not hasattr(index, "average_list_length"):
        return 0.0
    return index.average_list_length()


def _accepted_knobs(method_name: str, params: Mapping[str, Any]) -> Dict[str, Any]:
    """The subset of ``params`` that ``method_name``'s constructor accepts.

    The planner exposes one flat knob namespace (the CLI's), so
    ``granularity`` must reach the grid and hybrid members but not the
    token filter; filtering by constructor signature does that for any
    portfolio without a hand-kept table.
    """
    import inspect

    from repro.core.engine import METHOD_REGISTRY

    try:
        ctor = METHOD_REGISTRY[method_name]
    except KeyError:
        valid = ", ".join(sorted(METHOD_REGISTRY))
        raise ConfigurationError(
            f"unknown method {method_name!r}; valid methods: {valid}"
        ) from None
    signature = inspect.signature(ctor)
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    ):
        return dict(params)
    return {
        knob: value for knob, value in params.items() if knob in signature.parameters
    }


def _grid_cells_in(grid, region) -> int:
    """Cells the region's bounding box covers — O(1) arithmetic."""
    span = grid.cell_span(region)
    if span is None:
        return 0
    row_lo, row_hi, col_lo, col_hi = span
    return (row_hi - row_lo + 1) * (col_hi - col_lo + 1)


def _cell_prefix_len(num_cells: int, tau_r: float) -> float:
    """Predicted Lemma-2 prefix over a region's grid cells.

    Cell weights are intersection areas summing to ~the region area; the
    prefix drops the lightest suffix whose weight stays under
    ``c_R = τ_R·area``, so under roughly uniform weights it keeps a
    ``(1 - τ_R)`` fraction (plus the boundary element).
    """
    if num_cells <= 0:
        return 0.0
    return min(float(num_cells), num_cells * max(0.0, 1.0 - tau_r) + 1.0)


def _token_prefix(method, query: Query) -> List[Tuple[str, float]]:
    signature = method.scheme.query_signature(query) if isinstance(
        method, SingleSchemeFilter
    ) else method.textual.query_signature(query)
    threshold = (
        method.scheme.threshold(query)
        if isinstance(method, SingleSchemeFilter)
        else method.textual.threshold(query)
    )
    return signature[: select_prefix([w for _, w in signature], threshold)]


def _estimate_work(
    method: SearchMethod, query: Query, avg_list_len: float, corpus_size: int
) -> Tuple[float, float, float]:
    """Predicted ``(lists, entries, candidates)`` for one method.

    Degenerate queries (a vacuous threshold the method's signature scheme
    cannot filter on) cost a full scan: zero probes, every object a
    candidate — matching each filter's ``all_oids`` fallback exactly.
    """
    full_scan = (0.0, 0.0, float(corpus_size))
    if isinstance(method, GridFilter):
        if query.tau_r <= 0.0:
            return full_scan
        cells = _grid_cells_in(method.scheme.grid, query.region)
        lists = _cell_prefix_len(cells, query.tau_r)
        entries = lists * avg_list_len
        return lists, entries, min(float(corpus_size), entries)
    if isinstance(method, SingleSchemeFilter):  # the token filter
        if method.scheme.threshold(query) <= 0.0:
            return full_scan
        prefix = _token_prefix(method, query)
        lists = float(len(prefix))
        entries = float(sum(method.index.list_length(token) for token, _ in prefix))
        return lists, entries, min(float(corpus_size), entries)
    if isinstance(method, HybridFilter):
        if method._is_degenerate(query):
            return full_scan
        token_prefix = _token_prefix(method, query)
        cells = _grid_cells_in(method.spatial.grid, query.region)
        lists = len(token_prefix) * _cell_prefix_len(cells, query.tau_r)
        entries = lists * avg_list_len
        return lists, entries, min(float(corpus_size), entries)
    if isinstance(method, HierarchicalFilter):
        if method._is_degenerate(query):
            return full_scan
        c_r = query.tau_r * query.region.area
        lists = 0.0
        entries = 0.0
        for token, _ in _token_prefix(method, query):
            grids = method.token_grids.get(token)
            if grids is None:
                continue
            cells = method._region_cells(grids, query.region)
            prefix = cells[: select_prefix([w for _, w in cells], c_r)]
            lists += len(prefix)
            entries += sum(
                method.index.list_length((token, cell)) for cell, _ in prefix
            )
        return lists, entries, min(float(corpus_size), entries)
    if isinstance(method, KeywordFirstSearch):
        entries = float(
            sum(method.weighter.count(token) for token in query.tokens)
        )
        return float(len(query.tokens)), entries, min(float(corpus_size), entries)
    # Baselines without a modelled probe structure (naive, irtree, …):
    # assume a full scan so the planner only picks them when every
    # signature filter degenerates to one too.
    return full_scan


# ----------------------------------------------------------------------
# Coefficient calibration and persistence
# ----------------------------------------------------------------------


def load_rows(path: str) -> List[dict]:
    """Read a recording-mode JSONL stats log back into training rows."""
    rows: List[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def fit_coefficients(
    rows: Iterable[dict] | str,
    *,
    methods: Sequence[str] | None = None,
) -> Dict[str, List[float]]:
    """Least-squares cost coefficients from recorded training rows.

    For each method, solves ``argmin_c ||X c - y||`` with one row per
    recorded query, ``X = [1, lists, entries, candidates]`` taken from
    the *predicted* work estimates (the quantities available at plan
    time) and ``y`` the method's *observed* end-to-end seconds — so the
    fitted model directly maps plan-time estimates to wall time.

    Args:
        rows: Training rows (from :attr:`PlannedSealSearch.recorded_rows`)
            or a path to a recording-mode JSONL log.
        methods: Restrict/order the fitted methods (default: every method
            appearing in the rows).

    Returns:
        ``{method: [c0, c1, c2, c3]}`` for every method with at least
        one observation; methods without rows are omitted.
    """
    import numpy as np

    if isinstance(rows, str):
        rows = load_rows(rows)
    rows = list(rows)
    per_method: Dict[str, Tuple[List[List[float]], List[float]]] = {}
    for row in rows:
        predicted = row.get("predicted", {})
        observed = row.get("observed", {})
        for method_name, truth in observed.items():
            estimate = predicted.get(method_name)
            if estimate is None:
                continue
            xs, ys = per_method.setdefault(method_name, ([], []))
            xs.append(
                [1.0, estimate["lists"], estimate["entries"], estimate["candidates"]]
            )
            ys.append(float(truth["seconds"]))
    names = methods if methods is not None else sorted(per_method)
    fitted: Dict[str, List[float]] = {}
    for method_name in names:
        data = per_method.get(method_name)
        if not data or not data[0]:
            continue
        x = np.asarray(data[0], dtype=np.float64)
        y = np.asarray(data[1], dtype=np.float64)
        solution, *_ = np.linalg.lstsq(x, y, rcond=None)
        fitted[method_name] = [float(v) for v in solution]
    return fitted


def save_coefficients(coefficients: Mapping[str, Sequence[float]], path: str) -> None:
    """Persist fitted coefficients as JSON (atomic + fsynced)."""
    document = {
        "schema": 1,
        "terms": list(COST_TERMS),
        "coefficients": {
            method_name: [float(v) for v in values]
            for method_name, values in sorted(coefficients.items())
        },
    }
    atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_coefficients(path: str) -> Dict[str, List[float]]:
    """Read coefficients saved by :func:`save_coefficients`."""
    with open(path, encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("schema") != 1:
        raise ConfigurationError(f"{path} is not a planner-coefficients file")
    return {
        method_name: [float(v) for v in values]
        for method_name, values in document["coefficients"].items()
    }


# ----------------------------------------------------------------------
# Metrics aggregation over arbitrary engine shapes
# ----------------------------------------------------------------------


def iter_planners(engine: Any) -> Iterator[PlannedSealSearch]:
    """Every planner reachable inside an engine, deduplicated.

    Walks the shapes the service layer serves: a bare method, the
    ``SealSearch`` facade (``.method``), the segmented engine
    (``segment_methods()``), and the sharded engine (``.shards``).
    """
    seen: set[int] = set()

    def walk(node: Any) -> Iterator[PlannedSealSearch]:
        if node is None or id(node) in seen:
            return
        seen.add(id(node))
        if isinstance(node, PlannedSealSearch):
            yield node
            return
        inner = getattr(node, "method", None)
        if inner is not None:
            yield from walk(inner)
        segment_methods = getattr(node, "segment_methods", None)
        if callable(segment_methods):
            for method in segment_methods():
                yield from walk(method)
        for shard in getattr(node, "shards", ()) or ():
            yield from walk(shard)

    yield from walk(engine)


def collect_planner_metrics(engine: Any) -> Dict[str, object] | None:
    """The aggregated ``planner`` metrics block for an engine, or None.

    Returns None when the engine contains no planner (the service then
    reports ``"planner": null``), otherwise the merged
    :meth:`PlannerMetrics.as_dict` across every embedded planner —
    e.g. one per live segment of a segmented engine.
    """
    aggregate: PlannerMetrics | None = None
    for planner in iter_planners(engine):
        if aggregate is None:
            aggregate = PlannerMetrics()
        aggregate.merge(planner.metrics)
    return aggregate.as_dict() if aggregate is not None else None
