"""Corpus partitioning policies for sharded execution.

A policy maps a corpus to ``k`` disjoint oid lists covering every object.
Empty parts are legal (fewer objects than shards); the sharded engine
skips them.  Both policies are deterministic, so a sharded engine built
twice from the same corpus is identical — snapshots and benchmarks rely
on that.

* ``round-robin`` stripes oids modulo ``k``: perfectly balanced, and the
  right default when queries land anywhere in the space.
* ``spatial`` sorts objects by region centre (x, then y, then oid) and
  cuts the order into ``k`` equal slabs: objects near each other land in
  the same shard, so a query region tends to produce candidates in few
  shards and the per-shard grids stay tight around their slab.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.errors import ConfigurationError
from repro.core.objects import SpatioTextualObject

#: A policy: ``(objects, k) -> k disjoint oid lists covering the corpus``.
PartitionFn = Callable[[Sequence[SpatioTextualObject], int], List[List[int]]]


def _check_shards(shards: int) -> None:
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")


def partition_round_robin(
    objects: Sequence[SpatioTextualObject], shards: int
) -> List[List[int]]:
    """Stripe oids across shards: oid ``i`` lands in shard ``i % shards``."""
    _check_shards(shards)
    return [list(range(start, len(objects), shards)) for start in range(shards)]


def partition_spatial(
    objects: Sequence[SpatioTextualObject], shards: int
) -> List[List[int]]:
    """Equal-size slabs of the centre-sorted corpus (x, then y, then oid)."""
    _check_shards(shards)
    ordered = sorted(range(len(objects)), key=lambda oid: (*objects[oid].region.center, oid))
    n = len(ordered)
    base, extra = divmod(n, shards)
    parts: List[List[int]] = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        parts.append(ordered[start : start + size])
        start += size
    return parts


#: policy name -> partition function (the ``partition=`` knob of
#: :class:`repro.exec.sharded.ShardedSealSearch` and the CLI's
#: ``--partition``).
PARTITION_POLICIES: Dict[str, PartitionFn] = {
    "round-robin": partition_round_robin,
    "spatial": partition_spatial,
}


def get_partition_policy(name: str) -> PartitionFn:
    """Resolve a policy by name, with a helpful error for typos."""
    try:
        return PARTITION_POLICIES[name]
    except KeyError:
        valid = ", ".join(sorted(PARTITION_POLICIES))
        raise ConfigurationError(
            f"unknown partition policy {name!r}; valid policies: {valid}"
        ) from None
