"""Exhaustive-scan search: the correctness oracle.

``NaiveSearch`` hands every oid to the shared verifier, so its answers
are by construction the set defined in Definition 3.  Every filter's test
suite compares against it, which also guarantees all methods share the
exact same floating-point similarity semantics.
"""

from __future__ import annotations

from typing import Collection

from repro.core.method import SearchMethod
from repro.core.objects import Query
from repro.core.stats import SearchStats


class NaiveSearch(SearchMethod):
    """Scan-everything search (no filter step at all)."""

    name = "naive"

    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        return self.all_oids()
