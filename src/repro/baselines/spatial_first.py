"""The spatial-first baseline (Section 2.3).

An R-tree over object MBRs retrieves everything whose overlap with the
query region reaches ``cR = τR·|q.R|`` (a necessary condition for
``simR ≥ τR``), computes the exact spatial similarity, and keeps objects
with ``simR ≥ τR``; the textual check happens in verification.  Around
dense areas — exactly where LBS queries land — overlap alone prunes
poorly (the paper's motivating Twitter query overlapped ~8000 ROIs).
"""

from __future__ import annotations

from typing import Collection, List, Sequence

from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchStats
from repro.geometry.rect import spatial_jaccard
from repro.index.storage import PAGE_BYTES, IndexSizeReport
from repro.rtree import RTree
from repro.text.weights import TokenWeighter


class SpatialFirstSearch(SearchMethod):
    """Spatial-predicate-first baseline (``Spatial`` in Figures 16–17).

    Args:
        objects: The corpus.
        weighter: Corpus idf statistics.
        max_entries: R-tree fan-out.
    """

    name = "spatial-first"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
        *,
        max_entries: int = 32,
    ) -> None:
        super().__init__(objects, weighter)
        self.rtree = RTree.bulk_load(
            [(obj.region, obj.oid) for obj in self.corpus], max_entries=max_entries
        )

    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        if query.tau_r <= 0.0:
            # A vacuous spatial predicate admits spatially disjoint objects.
            return self.all_oids()
        c_r = query.tau_r * query.region.area
        q_region = query.region
        tau_r = query.tau_r
        hits = self.rtree.search_min_overlap(q_region, c_r)
        stats.entries_retrieved += len(hits)
        corpus = self.corpus
        out: List[int] = []
        for oid in hits:
            if spatial_jaccard(q_region, corpus[oid].region) >= tau_r:
                out.append(oid)
        return out

    def index_size(self) -> IndexSizeReport:
        """One 4 KB page per R-tree node, no inverted content."""
        nodes = self.rtree.node_count()
        return IndexSizeReport(
            num_lists=nodes,
            num_postings=len(self.rtree),
            directory_bytes=0,
            posting_bytes=nodes * PAGE_BYTES,
            page_bytes=nodes * PAGE_BYTES,
        )
