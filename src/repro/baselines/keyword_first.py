"""The keyword-first baseline (Section 2.3).

Plain inverted lists map each token to the objects containing it.  A
query gathers every object sharing at least one query token, computes the
*exact* textual similarity, keeps those with ``simT ≥ τT``, and leaves the
spatial check to verification.  Its weakness — the reason SEAL exists —
is that popular query tokens drag in enormous candidate sets that spatial
information could have pruned.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Collection, List, Sequence

from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchStats
from repro.index.inverted import InvertedIndex
from repro.index.postings import PostingList
from repro.index.storage import IndexSizeReport, measure_index
from repro.text.weights import TokenWeighter


class KeywordFirstSearch(SearchMethod):
    """Textual-predicate-first baseline (``Keyword`` in Figures 16–17)."""

    name = "keyword-first"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
    ) -> None:
        super().__init__(objects, weighter)
        # Plain postings: no bounds, bound slot reused as 0.0.
        self.index: InvertedIndex = InvertedIndex(PostingList)
        for obj in self.corpus:
            for token in obj.tokens:
                self.index.list_for(token).add(obj.oid, 0.0)
        # Python backend on purpose: the filter walks every retrieved
        # entry in a dict-accumulation loop, which iterates plain lists
        # faster than array scalars — and bounds here are all 0.0, so
        # the columnar head kernels have nothing to vectorise.
        self.index.freeze(backend="python")
        self._token_totals = [self.weighter.total_weight(obj.tokens) for obj in self.corpus]

    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        q_total = self.weighter.total_weight(query.tokens)
        if query.tau_t <= 0.0 or q_total <= 0.0:
            # Vacuous textual predicate — or a zero-weight query token
            # set, which scores simT = 1 against any object whose tokens
            # also weigh nothing, without sharing a single token.  Lists
            # cannot reach those objects; scan instead.
            return self.all_oids()
        weight = self.weighter.weight
        overlap: defaultdict[int, float] = defaultdict(float)
        for token in query.tokens:
            plist = self.index.get(token)
            if plist is None:
                continue
            stats.lists_probed += 1
            w = weight(token)
            for oid in plist.retrieve(0.0):
                stats.entries_retrieved += 1
                overlap[oid] += w
        tau_t = query.tau_t
        totals = self._token_totals
        out: List[int] = []
        for oid, inter_w in overlap.items():
            union_w = q_total + totals[oid] - inter_w
            if union_w <= 0.0 or inter_w >= tau_t * union_w:
                out.append(oid)
        return out

    def index_size(self) -> IndexSizeReport:
        return measure_index(self.index, bounds_per_posting=0)
