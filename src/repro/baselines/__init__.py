"""Baseline search methods (Section 2.3).

* :class:`~repro.baselines.naive.NaiveSearch` — exhaustive scan; the
  ground truth every other method is tested against.
* :class:`~repro.baselines.keyword_first.KeywordFirstSearch` — textual
  predicate first via plain inverted lists, spatial check second.
* :class:`~repro.baselines.spatial_first.SpatialFirstSearch` — spatial
  predicate first via an R-tree, textual check second.
* :class:`~repro.baselines.irtree.IRTreeSearch` — the IR-tree [Cong et
  al. 2009] extended to spatio-textual similarity search exactly as the
  paper describes.
"""

from repro.baselines.irtree import IRTreeSearch
from repro.baselines.keyword_first import KeywordFirstSearch
from repro.baselines.naive import NaiveSearch
from repro.baselines.spatial_first import SpatialFirstSearch

__all__ = ["IRTreeSearch", "KeywordFirstSearch", "NaiveSearch", "SpatialFirstSearch"]
