"""The IR-tree baseline, extended to similarity search (Section 2.3).

An IR-tree [Cong, Jensen, Wu — PVLDB 2009] is an R-tree whose every node
carries an inverted file over the tokens appearing in its subtree.  The
paper adapts it to spatio-textual similarity search: traverse from the
root, descending into a node ``n`` only when

* spatial overlap ``|q.R ∩ n.R| ≥ cR = τR·|q.R|``, and
* textual overlap ``Σ_{t ∈ q.T ∩ n.T} w(t) ≥ cT = τT·Σ_{t∈q.T} w(t)``,

both necessary conditions for any answer below ``n``.  Leaf objects
reaching the bottom are verified exactly.

The method is complete but — as Section 2.3 argues and Figures 16–17
show — its hierarchical bounds are loose: high-level nodes cover huge
regions and union nearly the whole vocabulary, so early levels prune
almost nothing while every visited node pays an inverted-file lookup.
The per-node token sets also blow the index up to ``H×`` the data size
(Table 1's 2.37 GB vs 0.34 GB of data).
"""

from __future__ import annotations

from typing import Collection, Dict, FrozenSet, List, Sequence

from repro.core.method import SearchMethod
from repro.core.objects import Query, SpatioTextualObject
from repro.core.stats import SearchStats
from repro.index.storage import IndexSizeReport, rtree_size_bytes
from repro.rtree import Node, RTree
from repro.text.weights import TokenWeighter


class IRTreeSearch(SearchMethod):
    """IR-tree extended to spatio-textual similarity search.

    Args:
        objects: The corpus.
        weighter: Corpus idf statistics.
        max_entries: Node fan-out (the paper's worked example uses 3).
    """

    name = "irtree"

    def __init__(
        self,
        objects: Sequence[SpatioTextualObject],
        weighter: TokenWeighter | None = None,
        *,
        max_entries: int = 32,
    ) -> None:
        super().__init__(objects, weighter)
        self.rtree = RTree.bulk_load(
            [(obj.region, obj.oid) for obj in self.corpus], max_entries=max_entries
        )
        # Decorate every node with its subtree token set (the node
        # inverted file).  Keyed by id(node): the tree is static after
        # bulk load and the decoration lives exactly as long as the tree.
        self._node_tokens: Dict[int, FrozenSet[str]] = {}
        if len(self.rtree):
            self._collect_tokens(self.rtree.root)

    def _collect_tokens(self, node: Node) -> FrozenSet[str]:
        if node.is_leaf:
            tokens = frozenset().union(
                *(self.corpus[entry.oid].tokens for entry in node.entries)
            )
        else:
            tokens = frozenset().union(
                *(self._collect_tokens(entry.child) for entry in node.entries)
            )
        self._node_tokens[id(node)] = tokens
        return tokens

    # ------------------------------------------------------------------
    # Filter step: bounded tree traversal
    # ------------------------------------------------------------------

    def candidates(self, query: Query, stats: SearchStats) -> Collection[int]:
        if not len(self.rtree):
            return []
        c_r = query.tau_r * query.region.area
        c_t = query.tau_t * self.weighter.total_weight(query.tokens)
        q_region = query.region
        q_tokens = query.tokens
        weight = self.weighter.weight
        node_tokens = self._node_tokens
        out: List[int] = []
        stack: List[Node] = [self.rtree.root]
        while stack:
            node = stack.pop()
            stats.lists_probed += 1  # one inverted-file consultation per node
            tokens = node_tokens[id(node)]
            if c_t > 0.0:
                overlap_w = sum(weight(t) for t in q_tokens if t in tokens)
                if overlap_w < c_t:
                    continue
            if node.is_leaf:
                for entry in node.entries:
                    if entry.mbr.intersection_area(q_region) >= c_r:
                        stats.entries_retrieved += 1
                        out.append(entry.oid)  # type: ignore[arg-type]
            else:
                for entry in node.entries:
                    if entry.mbr.intersection_area(q_region) >= c_r:
                        stack.append(entry.child)  # type: ignore[arg-type]
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_size(self) -> IndexSizeReport:
        """4 KB per node + the per-node inverted files (token → child)."""
        node_count = 0
        tokens_indexed = 0
        for node in self.rtree.iter_nodes():
            node_count += 1
            tokens_indexed += len(self._node_tokens[id(node)])
        total = rtree_size_bytes(node_count, len(self.rtree), tokens_indexed)
        return IndexSizeReport(
            num_lists=node_count,
            num_postings=tokens_indexed,
            directory_bytes=0,
            posting_bytes=total,
            page_bytes=total,
        )
