"""Figure 14 — GridFilter vs hash-based HybridFilter (four panels).

Series: G-256/512/1024 (grid-only) against H-256/512/1024 (hash-based
hybrid at the same granularities).  Paper shape: the hybrid is up to an
order of magnitude faster at every granularity because it prunes on both
axes simultaneously — its candidate sets are subsets of the grid
filter's.
"""

from __future__ import annotations

import pytest

from repro.bench import format_series_table, sweep

from benchmarks.conftest import GRANULARITIES, TAUS, emit


@pytest.fixture(scope="module")
def methods(twitter_method_matrix):
    out = {}
    for g in GRANULARITIES:
        out[f"G-{g}"] = twitter_method_matrix[f"grid-{g}"]
        out[f"H-{g}"] = twitter_method_matrix[f"hybrid-{g}"]
    return out


def _panel(benchmark, methods, queries, axis, title):
    def run():
        return {
            name: sweep(method, list(queries), TAUS, axis)
            for name, method in methods.items()
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_series_table(title, axis, series, metric="elapsed_ms"))
    emit(format_series_table(title + " — candidates", axis, series, metric="candidates"))


@pytest.mark.benchmark(group="fig14")
def test_fig14a_large_vary_tau_r(benchmark, methods, twitter_large_queries):
    _panel(
        benchmark, methods, twitter_large_queries, "tau_r",
        "Figure 14(a): Grid vs Hybrid, large-region queries, vary tau_r (ms/query)",
    )


@pytest.mark.benchmark(group="fig14")
def test_fig14b_large_vary_tau_t(benchmark, methods, twitter_large_queries):
    _panel(
        benchmark, methods, twitter_large_queries, "tau_t",
        "Figure 14(b): Grid vs Hybrid, large-region queries, vary tau_t (ms/query)",
    )


@pytest.mark.benchmark(group="fig14")
def test_fig14c_small_vary_tau_r(benchmark, methods, twitter_small_queries_bench):
    _panel(
        benchmark, methods, twitter_small_queries_bench, "tau_r",
        "Figure 14(c): Grid vs Hybrid, small-region queries, vary tau_r (ms/query)",
    )


@pytest.mark.benchmark(group="fig14")
def test_fig14d_small_vary_tau_t(benchmark, methods, twitter_small_queries_bench):
    _panel(
        benchmark, methods, twitter_small_queries_bench, "tau_t",
        "Figure 14(d): Grid vs Hybrid, small-region queries, vary tau_t (ms/query)",
    )
