"""Network serving: q/s vs worker-process count over one shared snapshot.

Not a paper figure — this prices the tentpole of the multi-process
serving PR.  The single-process service is GIL-bound: adding client
threads adds contention, not parallelism.  The :class:`ProcessSupervisor`
forks N workers that each ``load_engine(mmap=True)`` the *same* format-5
snapshot — one physical copy of the columnar arrays in the page cache,
N independent interpreters doing filter+verify — so q/s should scale
with cores.

The grid: worker processes ∈ ``REPRO_BENCH_NET_PROCS`` (default
``1,2``), result cache **off** (we are pricing engine work, not dict
lookups), ``2 × procs`` client connections replaying the workload.
Every answer is checked against a locally-computed oracle, so the bench
is also a differential test.

The acceptance bar — **≥ 1.5× q/s at 2 workers vs 1** — is asserted
only on multi-core hosts: on a single-core container the workers
timeshare one CPU and parity is the honest expectation (CI's multi-core
runners enforce the claim).  Scaled by ``REPRO_BENCH_N``,
``REPRO_BENCH_QUERIES`` and ``REPRO_BENCH_NET_REPEATS``.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import pytest

from repro import TokenWeighter, build_method
from repro.bench import format_table
from repro.datasets import generate_queries
from repro.io import publish_snapshot, save_engine
from repro.service import NetworkClient, ProcessSupervisor

from benchmarks.conftest import emit, make_twitter_corpus, record_trajectory, report_json

NET_N = int(os.environ.get("REPRO_BENCH_N", "10000"))
NET_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "16"))
NET_REPEATS = int(os.environ.get("REPRO_BENCH_NET_REPEATS", "6"))
PROC_COUNTS = tuple(
    int(v) for v in os.environ.get("REPRO_BENCH_NET_PROCS", "1,2").split(",") if v
)
METHOD = os.environ.get("REPRO_BENCH_NET_METHOD", "token")

#: The multi-core acceptance bar: 2 workers must clear 1.5× 1 worker.
MIN_SCALING = 1.5

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="ProcessSupervisor needs the fork start method",
)


@pytest.fixture(scope="module")
def corpus():
    return make_twitter_corpus(NET_N)


@pytest.fixture(scope="module")
def net_queries(corpus):
    return list(
        generate_queries(corpus, "small", num_queries=NET_QUERIES,
                         seed=13, tau_r=0.2, tau_t=0.2)
    )


@pytest.fixture(scope="module")
def engine(corpus):
    weighter = TokenWeighter(obj.tokens for obj in corpus)
    return build_method(corpus, METHOD, weighter)


@pytest.fixture(scope="module")
def snapshot(engine, tmp_path_factory):
    path = tmp_path_factory.mktemp("net") / "engine.pkl"
    save_engine(engine, path)
    return path


def _drive(address, queries, expected, connections: int, repeats: int):
    """Replay the workload from ``connections`` sockets; verify answers."""
    host, port = address
    errors: list = []

    def client() -> None:
        try:
            with NetworkClient(host, port, timeout=60.0) as net:
                for _ in range(repeats):
                    for i, query in enumerate(queries):
                        result = net.query(query)
                        if result.answers != expected[i]:
                            raise AssertionError(
                                f"query {i}: networked answers {result.answers[:8]} "
                                f"!= oracle {expected[i][:8]}"
                            )
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    workers = [threading.Thread(target=client) for _ in range(connections)]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors[:1]
    requests = connections * repeats * len(queries)
    return requests / elapsed if elapsed else 0.0, requests, elapsed


@pytest.mark.benchmark(group="net")
def test_net_worker_scaling(benchmark, engine, snapshot, net_queries, tmp_path):
    serving = tmp_path / "serving"
    publish_snapshot(serving, source_path=snapshot)
    expected = [engine.search(q).answers for q in net_queries]

    def run():
        rows = {}
        for procs in PROC_COUNTS:
            with ProcessSupervisor(
                serving,
                workers=procs,
                service_config={"enable_cache": False, "workers": 4},
            ) as supervisor:
                qps, requests, elapsed = _drive(
                    supervisor.address, net_queries, expected,
                    connections=2 * procs, repeats=NET_REPEATS,
                )
            rows[procs] = {
                "qps": qps,
                "requests": requests,
                "elapsed_seconds": elapsed,
                "connections": 2 * procs,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    cores = os.cpu_count() or 1
    baseline = rows[min(PROC_COUNTS)]["qps"]
    title = (
        f"Network serving q/s vs worker processes — {METHOD} engine, "
        f"{NET_N} objects, {NET_QUERIES} queries × {NET_REPEATS} repeats "
        f"per connection, cache off, {cores} core(s)"
    )
    table = {
        f"{procs} proc": [
            stats["connections"],
            round(stats["qps"]),
            f"{stats['qps'] / baseline:.2f}x" if baseline else "-",
        ]
        for procs, stats in rows.items()
    }
    emit(format_table(title, "workers", ["conns", "q/s", "vs 1 proc"], table))

    scaling = {
        f"{procs}proc": stats["qps"] / baseline if baseline else 0.0
        for procs, stats in rows.items()
    }
    report_json(
        "bench_net_scaling.json", title,
        {"rows": rows, "scaling_vs_min": scaling, "cores": cores},
    )
    record_trajectory(
        "net_scaling",
        {
            **{f"qps_{procs}proc": stats["qps"] for procs, stats in rows.items()},
            **{f"scaling_{label}": value for label, value in scaling.items()},
            "cores": cores,
        },
        scale={"objects": NET_N, "queries": NET_QUERIES, "repeats": NET_REPEATS},
    )

    # The acceptance bar only binds where the hardware can express it:
    # on one core, forked workers timeshare the CPU and parity is the
    # honest result.  CI runs this on multi-core runners.
    if cores >= 2 and 2 in rows and 1 in rows:
        observed = rows[2]["qps"] / rows[1]["qps"]
        assert observed >= MIN_SCALING, (
            f"2 worker processes reached only {observed:.2f}× the q/s of 1 "
            f"on a {cores}-core host (needs ≥ {MIN_SCALING}×)"
        )
