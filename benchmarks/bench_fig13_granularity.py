"""Figure 13 — grid granularity: filter time vs verification time.

The paper partitions the space into p × p grids for p = 64 … 8192 and
plots the filter and verification components of GridFilter's query time.
Shape to reproduce: verification time falls monotonically (finer cells →
fewer candidates) with diminishing returns, while filter time eventually
*rises* (more lists to probe), giving the U-shaped total that motivates
the Section 4.3 cost model.

We sweep p over powers of two scaled to the bench corpus; the cost-model
ablation (``bench_ablation_costmodel``) checks that Equation 4 picks a
level near this sweep's empirical optimum.
"""

from __future__ import annotations

import pytest

from repro import build_method
from repro.bench import format_table, measure_workload

from benchmarks.conftest import emit, scaled_granularity

#: Paper granularities (the paper sweeps 64 … 8192); actual grids use
#: the bench-space equivalents, labels keep the paper's numbers.
GRANULARITIES = (64, 256, 1024, 4096, 8192)


@pytest.fixture(scope="module")
def grid_filters(twitter_corpus, twitter_weighter):
    return {
        g: build_method(
            twitter_corpus, "grid", twitter_weighter, granularity=scaled_granularity(g)
        )
        for g in GRANULARITIES
    }


def _panel(benchmark, grid_filters, queries, title):
    def run():
        return {g: measure_workload(f, list(queries)) for g, f in grid_filters.items()}

    measures = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = {
        "Filter (ms)": [round(m.filter_ms, 3) for m in measures.values()],
        "Verification (ms)": [round(m.verify_ms, 3) for m in measures.values()],
        "Total (ms)": [round(m.elapsed_ms, 3) for m in measures.values()],
        "Candidates": [round(m.candidates, 1) for m in measures.values()],
        "Lists probed": [round(m.lists_probed, 1) for m in measures.values()],
    }
    emit(format_table(title, "granularity", list(measures), rows))


@pytest.mark.benchmark(group="fig13")
def test_fig13a_large_region(benchmark, grid_filters, twitter_large_queries):
    _panel(
        benchmark, grid_filters, twitter_large_queries,
        "Figure 13(a): GridFilter filter vs verification time, large-region queries",
    )


@pytest.mark.benchmark(group="fig13")
def test_fig13b_small_region(benchmark, grid_filters, twitter_small_queries_bench):
    _panel(
        benchmark, grid_filters, twitter_small_queries_bench,
        "Figure 13(b): GridFilter filter vs verification time, small-region queries",
    )
