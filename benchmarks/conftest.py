"""Shared benchmark fixtures: corpora, workloads, prebuilt methods.

Scale is controlled by environment variables so the full paper-scale run
and a quick smoke run use the same code:

* ``REPRO_BENCH_N``        objects per corpus (default 20000)
* ``REPRO_BENCH_QUERIES``  queries per workload (default 16)

The corpora are *density-scaled*: the paper's spaces (1342M km² Twitter,
473M km² USA) hold 1M objects, so at N objects we shrink the space side
by ``sqrt(N/1M)`` to keep objects-per-km² — and hence the overlap
pressure that motivates SEAL (~8000 ROIs overlapping a small query at 1M,
proportionally ~N·0.008 here) — faithful to the published data.  The
scalability bench (Figure 18) instead fixes the space and grows N, as the
paper does.
"""

from __future__ import annotations

import math
import os

import pytest

from repro import TokenWeighter, build_method
from repro.datasets import generate_queries, generate_twitter, generate_usa
from repro.geometry import Rect

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "20000"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "16"))

#: The paper's full-scale spaces and corpus size.
PAPER_N = 1_000_000
TWITTER_FULL_SIDE = 36_633.0
USA_FULL_SIDE = 21_749.0

#: Threshold sweep of every figure: 0.1 … 0.5, default 0.4 (Section 6.1).
TAUS = (0.1, 0.2, 0.3, 0.4, 0.5)
DEFAULT_TAU = 0.4

#: Paper granularities the filter-comparison figures sweep; actual grids
#: use the bench-space equivalents (see :func:`scaled_granularity`).
GRANULARITIES = (256, 512, 1024)


def density_scaled_space(full_side: float, num_objects: int) -> Rect:
    side = full_side * math.sqrt(num_objects / PAPER_N)
    return Rect(0.0, 0.0, side, side)


def scaled_granularity(paper_granularity: int, num_objects: int = BENCH_N) -> int:
    """Bench-equivalent of a paper granularity.

    The bench space side shrinks by ``sqrt(N/1M)``, so a ``p × p`` grid
    over it has *smaller* cells than the paper's ``p × p`` grid over the
    full space.  Scaling the granularity by the same factor keeps the
    absolute cell size — and hence the cells-per-region statistics that
    drive probe counts and signature sizes — faithful to the paper's
    setting.  Figure labels keep the paper's numbers.
    """
    return max(4, round(paper_granularity * math.sqrt(num_objects / PAPER_N)))


def make_twitter_corpus(num_objects: int):
    """The bench Twitter corpus: clustered tightly enough to reproduce
    the paper's overlap counts (Section 1: ~8000 ROIs per small query at
    1M objects; proportional at reduced N)."""
    return generate_twitter(
        num_objects,
        seed=7,
        space=density_scaled_space(TWITTER_FULL_SIDE, num_objects),
        num_clusters=max(8, num_objects // 500),
        cluster_spread_fraction=0.002,
    )


def make_usa_corpus(num_objects: int):
    return generate_usa(
        num_objects,
        seed=11,
        space=density_scaled_space(USA_FULL_SIDE, num_objects),
        num_clusters=max(8, num_objects // 500),
        cluster_spread_fraction=0.002,
    )


@pytest.fixture(scope="session")
def twitter_corpus():
    return make_twitter_corpus(BENCH_N)


@pytest.fixture(scope="session")
def twitter_weighter(twitter_corpus):
    return TokenWeighter(obj.tokens for obj in twitter_corpus)


@pytest.fixture(scope="session")
def twitter_large_queries(twitter_corpus):
    return generate_queries(
        twitter_corpus, "large", BENCH_QUERIES, seed=13,
        tau_r=DEFAULT_TAU, tau_t=DEFAULT_TAU,
    )


@pytest.fixture(scope="session")
def twitter_small_queries_bench(twitter_corpus):
    return generate_queries(
        twitter_corpus, "small", BENCH_QUERIES, seed=13,
        tau_r=DEFAULT_TAU, tau_t=DEFAULT_TAU,
    )


@pytest.fixture(scope="session")
def usa_corpus():
    return make_usa_corpus(BENCH_N)


@pytest.fixture(scope="session")
def usa_weighter(usa_corpus):
    return TokenWeighter(obj.tokens for obj in usa_corpus)


@pytest.fixture(scope="session")
def usa_large_queries(usa_corpus):
    return generate_queries(
        usa_corpus, "large", BENCH_QUERIES, seed=13, tau_r=DEFAULT_TAU, tau_t=DEFAULT_TAU
    )


@pytest.fixture(scope="session")
def usa_small_queries(usa_corpus):
    return generate_queries(
        usa_corpus, "small", BENCH_QUERIES, seed=13, tau_r=DEFAULT_TAU, tau_t=DEFAULT_TAU
    )


# ----------------------------------------------------------------------
# Prebuilt methods (index construction excluded from query timings)
# ----------------------------------------------------------------------


class MethodMatrix:
    """Lazily-built canonical method configurations, shared across benches.

    The filter-comparison benches (Figures 12/14/15, the planner bench)
    used to each build their own copies of the same indexes — the token
    filter, grids and hybrids at the canonical granularities, the SEAL
    configuration — multiplying session setup time.  This matrix builds
    each configuration **on first access** and caches it for the session,
    so every bench module shares one instance per configuration and a
    module that never touches (say) ``hybrid-1024`` never pays for it.

    Keys: ``token``, ``seal``, ``grid-<p>`` and ``hybrid-<p>`` for each
    paper granularity ``p`` in :data:`GRANULARITIES` (the grids are built
    at the bench-space-scaled equivalent).
    """

    def __init__(self, corpus, weighter) -> None:
        self._corpus = corpus
        self._weighter = weighter
        self._built: dict = {}
        self._specs: dict = {
            "token": ("token", {}),
            "seal": ("seal", {"mt": 32, "max_level": 8, "min_objects": 8}),
        }
        for g in GRANULARITIES:
            self._specs[f"grid-{g}"] = (
                "grid", {"granularity": scaled_granularity(g)},
            )
            self._specs[f"hybrid-{g}"] = (
                "hash-hybrid",
                {"granularity": scaled_granularity(g), "num_buckets": 1 << 20},
            )

    def __getitem__(self, key: str):
        method = self._built.get(key)
        if method is None:
            name, knobs = self._specs[key]
            method = self._built[key] = build_method(
                self._corpus, name, self._weighter, **knobs
            )
        return method

    def __iter__(self):
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def knobs(self, key: str) -> dict:
        """The constructor knobs of one configuration (a copy)."""
        return dict(self._specs[key][1])


@pytest.fixture(scope="session")
def twitter_method_matrix(twitter_corpus, twitter_weighter):
    return MethodMatrix(twitter_corpus, twitter_weighter)


@pytest.fixture(scope="session")
def twitter_methods(twitter_corpus, twitter_weighter):
    """The four comparison methods of Figures 16–18 on Twitter."""
    return {
        "IR-Tree": build_method(twitter_corpus, "irtree", twitter_weighter),
        "Keyword": build_method(twitter_corpus, "keyword-first", twitter_weighter),
        "Spatial": build_method(twitter_corpus, "spatial-first", twitter_weighter),
        "SEAL": build_method(
            twitter_corpus, "seal", twitter_weighter, mt=32, max_level=8, min_objects=8
        ),
    }


@pytest.fixture(scope="session")
def usa_methods(usa_corpus, usa_weighter):
    return {
        "IR-Tree": build_method(usa_corpus, "irtree", usa_weighter),
        "Keyword": build_method(usa_corpus, "keyword-first", usa_weighter),
        "Spatial": build_method(usa_corpus, "spatial-first", usa_weighter),
        "SEAL": build_method(
            usa_corpus, "seal", usa_weighter, mt=32, max_level=8, min_objects=8
        ),
    }


#: Report tables accumulated by the bench modules; flushed to the
#: terminal after the run by pytest_terminal_summary (output during tests
#: is swallowed by pytest's fd-level capture).
_REPORTS: list[str] = []

#: Headline scalars accumulated by record_trajectory, appended to the
#: committed BENCH_trajectory.json after the run.
_TRAJECTORY: list[dict] = []


def emit(text: str) -> None:
    """Queue a report table for printing after the benchmark run."""
    _REPORTS.append(text)


def report_json(name: str, title: str, data: object) -> None:
    """Queue a JSON report block for the terminal summary; with
    ``REPRO_BENCH_JSON=<dir>`` also write it to ``<dir>/<name>`` (CI
    uploads that directory as the bench artifact)."""
    from repro.bench import format_json_report, write_json_report

    emit(format_json_report(title, data))
    directory = os.environ.get("REPRO_BENCH_JSON")
    if directory:
        os.makedirs(directory, exist_ok=True)
        write_json_report(os.path.join(directory, name), title, data)


def record_trajectory(benchmark: str, metrics: dict, *, scale: "dict | None" = None) -> None:
    """Queue one headline-scalar entry for ``BENCH_trajectory.json``.

    The trajectory file is the committed history of the numbers this
    repo claims: every bench run appends its headline scalars (q/s,
    speedups, recovery seconds …) stamped with the UTC time and the git
    commit, so a perf regression shows up as a kink in a time series
    instead of vanishing into an overwritten artifact.  Schema (stable,
    version-gated)::

        {"schema": 1,
         "entries": [{"benchmark": "...", "recorded": "...Z",
                      "commit": "abc1234", "scale": {...},
                      "metrics": {"name": number, ...}}, ...]}

    ``metrics`` values must be plain numbers.  ``scale`` records the
    knobs the run used (object/query counts) so entries at different
    ``REPRO_BENCH_N`` are never compared as if they measured the same
    thing.  Set ``REPRO_BENCH_TRAJECTORY`` to redirect the file (CI
    smoke runs point it at the artifact dir) or to the empty string to
    disable recording.
    """
    cleaned = {}
    for key, value in metrics.items():
        if value is None or isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeError(f"trajectory metric {key!r} must be a number, got {value!r}")
        cleaned[key] = round(float(value), 6)
    _TRAJECTORY.append(
        {"benchmark": benchmark, "scale": dict(scale or {}), "metrics": cleaned}
    )


def _git_commit() -> "str | None":
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(__file__),
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _flush_trajectory() -> "str | None":
    """Append this run's entries to the trajectory file; returns its path."""
    import json
    import time

    from repro.io.atomic import atomic_write_text

    target = os.environ.get("REPRO_BENCH_TRAJECTORY")
    if target == "" or not _TRAJECTORY:
        return None
    path = target or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir, "BENCH_trajectory.json"
    )
    path = os.path.normpath(path)
    document = {"schema": 1, "entries": []}
    try:
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
    except FileNotFoundError:
        existing = None
    except (OSError, json.JSONDecodeError) as exc:
        raise RuntimeError(
            f"refusing to overwrite unreadable trajectory file {path}: {exc}"
        ) from exc
    if existing is not None:
        if (
            not isinstance(existing, dict)
            or existing.get("schema") != 1
            or not isinstance(existing.get("entries"), list)
        ):
            raise RuntimeError(
                f"{path} does not carry trajectory schema 1; refusing to append"
            )
        document = existing
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    commit = _git_commit()
    for entry in _TRAJECTORY:
        document["entries"].append({"recorded": stamp, "commit": commit, **entry})
    atomic_write_text(path, json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def pytest_terminal_summary(terminalreporter):
    trajectory_path = _flush_trajectory()
    if not _REPORTS and trajectory_path is None:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "paper figure/table reproductions")
    for text in _REPORTS:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)
    if trajectory_path is not None:
        terminalreporter.write_line("")
        terminalreporter.write_line(
            f"{len(_TRAJECTORY)} trajectory entr"
            f"{'y' if len(_TRAJECTORY) == 1 else 'ies'} appended to {trajectory_path}"
        )
