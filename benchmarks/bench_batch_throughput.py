"""Execution-layer throughput: per-query loop vs batch vs sharded.

Not a paper figure — this benchmarks the :mod:`repro.exec` layer the
scaling roadmap builds on.  Three comparisons over one generated corpus
(default 10k objects, env-overridable like the other benches):

1. **Batch vs per-query** (small-region workload, recall-oriented
   thresholds): ``BatchExecutor`` must beat the sequential
   ``method.search`` loop on queries/sec — the shared vectorised
   verification scratch is the win.
2. **Sharded K-scaling** (large-region, low thresholds — a filter-bound
   workload): the per-query *critical-path* filter time (max over
   shards, i.e. the latency under ideal parallel hardware) and the
   max-shard postings scanned should both shrink as K grows.
3. **Sharded batch throughput** for K ∈ {1, 2, 4}, both partition
   policies, for the wall-clock view (on GIL builds thread fan-out adds
   overhead; the critical-path numbers are the scaling signal).

Results print as the usual fixed-width tables plus a JSON report
(``format_json_report``) for machines; set ``REPRO_BENCH_JSON`` to also
write the JSON to a file.
"""

from __future__ import annotations

import os

import pytest

from repro import BatchExecutor, TokenWeighter, build_method
from repro.bench import format_table, measure_throughput
from repro.datasets import generate_queries
from repro.exec.sharded import ShardedSealSearch

from benchmarks.conftest import emit, make_twitter_corpus, record_trajectory, report_json

BATCH_N = int(os.environ.get("REPRO_BENCH_BATCH_N", "10000"))
BATCH_QUERIES = int(os.environ.get("REPRO_BENCH_BATCH_QUERIES", "64"))
REPEATS = int(os.environ.get("REPRO_BENCH_BATCH_REPEATS", "3"))
SHARD_COUNTS = (1, 2, 4)

#: Method-name -> constructor params for the batch comparison; spans a
#: verify-bound method (naive), a filter+verify mix (token) and the
#: paper's best (seal).
BATCH_METHODS = {
    "naive": {},
    "token": {},
    "seal": {"mt": 16, "max_level": 7, "min_objects": 8},
}


@pytest.fixture(scope="module")
def corpus():
    return make_twitter_corpus(BATCH_N)


@pytest.fixture(scope="module")
def weighter(corpus):
    return TokenWeighter(obj.tokens for obj in corpus)


@pytest.fixture(scope="module")
def small_queries(corpus):
    """Small regions, recall-oriented thresholds: candidate sets are big
    enough (≈80 for seal at 10k) that verification carries real work per
    query — the regime batching exists for."""
    return list(
        generate_queries(corpus, "small", num_queries=BATCH_QUERIES, seed=13, tau_r=0.2, tau_t=0.2)
    )


@pytest.fixture(scope="module")
def filter_bound_queries(corpus):
    """Large regions + low thresholds: long posting scans, so the filter
    step carries per-object work that sharding can actually divide."""
    return list(
        generate_queries(corpus, "large", num_queries=BATCH_QUERIES, seed=13, tau_r=0.15, tau_t=0.15)
    )


@pytest.mark.benchmark(group="exec-throughput")
def test_batch_vs_single_query(benchmark, corpus, weighter, small_queries):
    def run():
        rows = {}
        payload = {}
        for name, params in BATCH_METHODS.items():
            method = build_method(corpus, name, weighter, **params)
            executor = BatchExecutor()

            def serial(queries):
                for query in queries:
                    method.search(query)

            executor.run(method, small_queries)  # warm the shared scratch
            single = measure_throughput(serial, small_queries, repeats=REPEATS)
            batched = measure_throughput(
                lambda queries: executor.run(method, queries), small_queries, repeats=REPEATS
            )
            speedup = batched.qps / single.qps if single.qps else 0.0
            rows[name] = [round(single.qps), round(batched.qps), f"{speedup:.2f}x"]
            payload[name] = {"single": single, "batched": batched, "speedup": speedup}
        return rows, payload

    rows, payload = benchmark.pedantic(run, rounds=1, iterations=1)
    title = (
        f"Batch vs per-query execution — {BATCH_N} objects, "
        f"{BATCH_QUERIES} small-region queries (queries/sec)"
    )
    emit(format_table(title, "method", ["single q/s", "batch q/s", "speedup"], rows))
    report_json("batch_vs_single.json", title, payload)
    record_trajectory(
        "batch_vs_single",
        {
            **{f"{name}_batch_qps": entry["batched"].qps for name, entry in payload.items()},
            **{f"{name}_speedup": entry["speedup"] for name, entry in payload.items()},
        },
        scale={"objects": BATCH_N, "queries": BATCH_QUERIES, "repeats": REPEATS},
    )


#: Methods for the shard-scaling comparison: ``keyword-first`` has an
#: object-bound filter step (postings scanned ∝ shard size), so its
#: critical path shows the 1/K scaling cleanly; ``seal`` filters so
#: selectively that per-query signature setup dominates — its scaling
#: shows up in max-shard postings scanned rather than wall time.
SCALING_METHODS = {
    "keyword-first": {},
    "seal": {"mt": 16, "max_level": 7, "min_objects": 8},
}


@pytest.mark.benchmark(group="exec-throughput")
def test_sharded_filter_scaling(benchmark, corpus, filter_bound_queries):
    pairs = [(obj.region, obj.tokens) for obj in corpus]

    def run():
        rows = {}
        payload = {}
        for name, params in SCALING_METHODS.items():
            for k in SHARD_COUNTS:
                engine = ShardedSealSearch(
                    pairs, name, shards=k, partition="round-robin", **params
                )
                results = [engine.search_query(q) for q in filter_bound_queries]
                n = len(results)
                critical_ms = 1000.0 * sum(r.stats.filter_seconds for r in results) / n
                max_entries = sum(
                    max(s.entries_retrieved for s in r.per_shard) for r in results
                ) / n
                rows[f"{name} K={k}"] = [f"{critical_ms:.3f}", round(max_entries)]
                payload[f"{name}-K{k}"] = {
                    "critical_path_filter_ms": critical_ms,
                    "max_shard_entries_retrieved": max_entries,
                }
        return rows, payload

    rows, payload = benchmark.pedantic(run, rounds=1, iterations=1)
    title = (
        f"Sharded filter scaling (round-robin, critical path = max over shards) — "
        f"{BATCH_N} objects, filter-bound workload"
    )
    emit(format_table(
        title, "method/shards", ["crit filter ms", "max-shard entries"], rows,
    ))
    report_json("sharded_scaling.json", title, payload)


@pytest.mark.benchmark(group="exec-throughput")
def test_sharded_partition_policies(benchmark, corpus, small_queries):
    pairs = [(obj.region, obj.tokens) for obj in corpus]

    def run():
        rows = {}
        payload = {}
        for partition in ("round-robin", "spatial"):
            for k in SHARD_COUNTS:
                engine = ShardedSealSearch(
                    pairs, "seal", shards=k, partition=partition,
                    mt=16, max_level=7, min_objects=8,
                )
                batch = measure_throughput(engine.search_batch, small_queries, repeats=REPEATS)
                rows[f"{partition} K={k}"] = [round(batch.qps), f"{batch.mean_ms:.3f}"]
                payload[f"{partition}-K{k}"] = batch
        return rows, payload

    rows, payload = benchmark.pedantic(run, rounds=1, iterations=1)
    title = f"Sharded batch throughput by partition policy — {BATCH_N} objects"
    emit(format_table(title, "engine", ["batch q/s", "ms/query"], rows))
    report_json("sharded_policies.json", title, payload)
