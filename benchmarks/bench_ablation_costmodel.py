"""Ablation — the Section 4.3 cost model vs the empirical optimum.

Runs the grid-tree level walk of :func:`repro.grid.granularity.
select_granularity` (with an empirical candidate counter plugged in as
π2's |C| estimate) and compares the level it picks against a brute-force
sweep of actual GridFilter query times.  Expectation: the model's choice
lands within one level of the sweep's empirical optimum.
"""

from __future__ import annotations

import pytest

from repro import build_method
from repro.bench import format_table, measure_workload
from repro.core.stats import SearchStats
from repro.grid.granularity import select_granularity

from benchmarks.conftest import emit

MAX_LEVEL = 9  # granularity up to 512 on the density-scaled bench space


@pytest.mark.benchmark(group="ablation-costmodel")
def test_costmodel_vs_sweep(benchmark, twitter_corpus, twitter_weighter, twitter_small_queries_bench):
    queries = list(twitter_small_queries_bench)
    filters: dict = {}

    def filter_at(level: int):
        if level not in filters:
            filters[level] = build_method(
                twitter_corpus, "grid", twitter_weighter, granularity=2 ** level
            )
        return filters[level]

    def candidate_counter(level: int) -> float:
        method = filter_at(level)
        return sum(len(method.candidates(q, SearchStats())) for q in queries) / len(queries)

    def run():
        selection = select_granularity(
            twitter_corpus,
            queries,
            max_level=MAX_LEVEL,
            benefit_threshold=1.0,
            pi1=1.0,
            pi2=5.0,
            candidate_counter=candidate_counter,
        )
        empirical = {
            level: measure_workload(filter_at(level), queries).elapsed_ms
            for level in range(2, MAX_LEVEL + 1)
        }
        return selection, empirical

    selection, empirical = benchmark.pedantic(run, rounds=1, iterations=1)
    best_level = min(empirical, key=empirical.get)
    rows = {
        "Model cost": [
            round(next((c.total for c in selection.costs if c.level == lvl), float("nan")), 1)
            for lvl in empirical
        ],
        "Measured ms/query": [round(empirical[lvl], 3) for lvl in empirical],
    }
    emit(
        format_table(
            f"Ablation: cost model picked level {selection.level} "
            f"(granularity {selection.granularity}); empirical best level {best_level}",
            "level",
            list(empirical),
            rows,
        )
    )
