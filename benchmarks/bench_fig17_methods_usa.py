"""Figure 17 — SEAL vs IR-tree / Keyword / Spatial on USA + DBLP.

Same four panels as Figure 16 on the synthetic USA dataset.  The paper's
observations to reproduce: Keyword sometimes performs *worse* than
Spatial here (17(a)) because USA regions are small and uniform so spatial
pruning is strong, while for large τT Spatial falls behind (17(d)); SEAL
stays fastest everywhere.
"""

from __future__ import annotations

import pytest

from repro.bench import format_series_table, sweep

from benchmarks.conftest import TAUS, emit


def _panel(benchmark, methods, queries, axis, title):
    def run():
        return {
            name: sweep(method, list(queries), TAUS, axis)
            for name, method in methods.items()
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_series_table(title, axis, series, metric="elapsed_ms"))
    emit(format_series_table(title + " — candidates", axis, series, metric="candidates"))


@pytest.mark.benchmark(group="fig17-panels")
def test_fig17a_large_vary_tau_r(benchmark, usa_methods, usa_large_queries):
    _panel(
        benchmark, usa_methods, usa_large_queries, "tau_r",
        "Figure 17(a): methods on USA, large-region queries, vary tau_r (ms/query)",
    )


@pytest.mark.benchmark(group="fig17-panels")
def test_fig17b_large_vary_tau_t(benchmark, usa_methods, usa_large_queries):
    _panel(
        benchmark, usa_methods, usa_large_queries, "tau_t",
        "Figure 17(b): methods on USA, large-region queries, vary tau_t (ms/query)",
    )


@pytest.mark.benchmark(group="fig17-panels")
def test_fig17c_small_vary_tau_r(benchmark, usa_methods, usa_small_queries):
    _panel(
        benchmark, usa_methods, usa_small_queries, "tau_r",
        "Figure 17(c): methods on USA, small-region queries, vary tau_r (ms/query)",
    )


@pytest.mark.benchmark(group="fig17-panels")
def test_fig17d_small_vary_tau_t(benchmark, usa_methods, usa_small_queries):
    _panel(
        benchmark, usa_methods, usa_small_queries, "tau_t",
        "Figure 17(d): methods on USA, small-region queries, vary tau_t (ms/query)",
    )
