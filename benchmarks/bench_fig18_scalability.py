"""Figure 18 — scalability: elapsed time vs number of objects.

The paper grows the Twitter corpus from 0.2M to 1M objects *within the
same space* (density rises with N) and plots SEAL's per-query time for
several thresholds, observing sub-linear growth.  We reproduce the setup
at bench scale: one corpus generated at the largest size, prefixes taken
for the smaller sizes, and SEAL rebuilt per size.

Panels: (a) large-region queries across spatial thresholds; (b)
large-region queries across textual thresholds.
"""

from __future__ import annotations

import pytest

from repro import build_method
from repro.bench import format_table, measure_workload
from repro.datasets import generate_queries

from benchmarks.conftest import BENCH_N, emit, make_twitter_corpus

SIZE_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
SWEEP_TAUS = (0.1, 0.3, 0.5)


@pytest.fixture(scope="module")
def scaled_engines():
    """SEAL engines over growing prefixes of one fixed-space corpus."""
    full = make_twitter_corpus(BENCH_N)
    engines = {}
    for fraction in SIZE_FRACTIONS:
        n = int(BENCH_N * fraction)
        subset = full[:n]  # oids stay dense: 0..n-1
        engines[n] = build_method(subset, "seal", mt=32, max_level=8, min_objects=8)
    queries = generate_queries(full, "large", 16, seed=13, tau_r=0.4, tau_t=0.4)
    return engines, list(queries)


def _panel(benchmark, scaled_engines, axis, title):
    engines, queries = scaled_engines

    def run():
        rows = {}
        for tau in SWEEP_TAUS:
            label = f"{'Spatial' if axis == 'tau_r' else 'Textual'} Threshold={tau}"
            cells = []
            for n, engine in engines.items():
                stamped = [
                    q.with_thresholds(tau_r=tau) if axis == "tau_r" else q.with_thresholds(tau_t=tau)
                    for q in queries
                ]
                cells.append(round(measure_workload(engine, stamped).elapsed_ms, 3))
            rows[label] = cells
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    engines_keys = list(engines)
    emit(format_table(title, "num objects", engines_keys, rows))


@pytest.mark.benchmark(group="fig18")
def test_fig18a_vary_spatial_threshold(benchmark, scaled_engines):
    _panel(
        benchmark, scaled_engines, "tau_r",
        "Figure 18(a): SEAL scalability vs corpus size, spatial thresholds (ms/query)",
    )


@pytest.mark.benchmark(group="fig18")
def test_fig18b_vary_textual_threshold(benchmark, scaled_engines):
    _panel(
        benchmark, scaled_engines, "tau_t",
        "Figure 18(b): SEAL scalability vs corpus size, textual thresholds (ms/query)",
    )
