"""Service throughput: q/s and latency vs client threads × cache × churn.

Not a paper figure — this prices the serving layer of this PR.  SEAL's
evaluation (and any real deployment) replays repeated-query workloads:
the same hot regions arrive over and over, which is exactly what the
epoch-keyed result cache converts from milliseconds of filter+verify
into a dict lookup.  The grid:

* **client threads** — concurrent clients hammering one service
  (REPRO_BENCH_SERVICE_THREADS, comma-separated);
* **cache on / off** — the headline ratio; on a repeated workload the
  cache-on rows must clear **≥ 2× q/s** over cache-off (asserted below
  whenever the workload repeats enough for the cache to matter);
* **churn on / off** — a mutator thread inserts into the segmented
  engine during the run, bumping the epoch and invalidating the cache;
  the cache-on-under-churn row prices invalidation honestly.

Reported per row: q/s over the run's wall time, p50/p99 request
latency (from the service's own histogram), cache hit rate, rejected
count.  Single-CPU GIL container: client threads add contention, not
parallel speed-up — which is the honest serving regime to measure here.

Scaled by ``REPRO_BENCH_N`` (corpus; default 10000),
``REPRO_BENCH_QUERIES`` (distinct queries, default 16),
``REPRO_BENCH_SERVICE_REPEATS`` (workload replays per client, default
8) and ``REPRO_BENCH_SERVICE_CHURN`` (churn inserts, default 64).
Results print as a table plus a JSON report; ``REPRO_BENCH_JSON=<dir>``
also writes the JSON for the CI artifact upload.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import SegmentedSealSearch
from repro.bench import format_table
from repro.datasets import generate_queries
from repro.service import QueryService

from benchmarks.conftest import emit, make_twitter_corpus, record_trajectory, report_json

SERVICE_N = int(os.environ.get("REPRO_BENCH_N", "10000"))
SERVICE_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "16"))
REPEATS = int(os.environ.get("REPRO_BENCH_SERVICE_REPEATS", "8"))
THREAD_COUNTS = tuple(
    int(v) for v in os.environ.get("REPRO_BENCH_SERVICE_THREADS", "1,4").split(",") if v
)
CHURN_INSERTS = int(os.environ.get("REPRO_BENCH_SERVICE_CHURN", "64"))
METHOD = os.environ.get("REPRO_BENCH_SERVICE_METHOD", "token")

#: The cache-on/cache-off acceptance ratio on the repeated workload.
MIN_CACHE_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def corpus_objects():
    """One generator run: first N objects seed the engine, rest churn."""
    return make_twitter_corpus(SERVICE_N + CHURN_INSERTS)


@pytest.fixture(scope="module")
def corpus_pairs(corpus_objects):
    pairs = [(obj.region, obj.tokens) for obj in corpus_objects[:SERVICE_N]]
    churn = [(obj.region, obj.tokens) for obj in corpus_objects[SERVICE_N:]]
    return pairs, churn


@pytest.fixture(scope="module")
def service_queries(corpus_objects):
    return list(
        generate_queries(
            corpus_objects[:SERVICE_N], "small", num_queries=SERVICE_QUERIES,
            seed=13, tau_r=0.2, tau_t=0.2,
        )
    )


def _drive(service: QueryService, queries, threads: int, churn) -> dict:
    """Replay the workload from ``threads`` clients; optionally churn."""
    errors: list = []

    def client() -> None:
        try:
            for _ in range(REPEATS):
                for query in queries:
                    service.query(query)
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def mutator() -> None:
        try:
            for region, tokens in churn:
                service.insert(region, tokens)
                time.sleep(0.0005)  # spread bumps across the run
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    workers = [threading.Thread(target=client) for _ in range(threads)]
    if churn:
        workers.append(threading.Thread(target=mutator))
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors[:1]
    metrics = service.metrics()
    requests = threads * REPEATS * len(queries)
    cache = metrics["cache"]
    return {
        "threads": threads,
        "requests": requests,
        "elapsed_seconds": elapsed,
        "qps": requests / elapsed if elapsed else 0.0,
        "p50_ms": metrics["latency_ms"]["p50_ms"],
        "p99_ms": metrics["latency_ms"]["p99_ms"],
        "cache_hit_rate": cache["hit_rate"] if cache is not None else None,
        "rejected": metrics["admission"]["rejected"],
        "final_epoch": metrics["epoch"],
    }


@pytest.mark.benchmark(group="service")
def test_service_throughput_grid(benchmark, corpus_pairs, service_queries):
    pairs, churn = corpus_pairs

    def run():
        rows = {}
        for threads in THREAD_COUNTS:
            for cache_on in (False, True):
                for churn_on in (False, True):
                    engine = SegmentedSealSearch(pairs, METHOD, buffer_capacity=256)
                    service = QueryService(
                        engine,
                        enable_cache=cache_on,
                        cache_capacity=4 * SERVICE_QUERIES,
                        workers=4,
                        max_queue=max(64, 8 * threads * SERVICE_QUERIES),
                    )
                    try:
                        stats = _drive(
                            service, service_queries, threads,
                            churn if churn_on else (),
                        )
                    finally:
                        service.close()
                    key = (
                        f"{threads}t cache={'on' if cache_on else 'off'} "
                        f"churn={'on' if churn_on else 'off'}"
                    )
                    rows[key] = stats
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    title = (
        f"Service throughput — {METHOD} segmented engine, {SERVICE_N} objects, "
        f"{SERVICE_QUERIES} queries × {REPEATS} repeats per client, "
        f"{CHURN_INSERTS} churn inserts"
    )
    table = {
        key: [
            round(stats["qps"]),
            f"{stats['p50_ms']:.3f}",
            f"{stats['p99_ms']:.2f}",
            "-" if stats["cache_hit_rate"] is None else f"{100 * stats['cache_hit_rate']:.0f}%",
            stats["rejected"],
        ]
        for key, stats in rows.items()
    }
    emit(format_table(title, "configuration",
                      ["q/s", "p50 ms", "p99 ms", "hit rate", "rejected"], table))

    speedups = {}
    for threads in THREAD_COUNTS:
        on = rows[f"{threads}t cache=on churn=off"]["qps"]
        off = rows[f"{threads}t cache=off churn=off"]["qps"]
        speedups[f"{threads}t"] = on / off if off else 0.0
    report_json(
        "bench_service_throughput.json",
        title,
        {"rows": rows, "cache_speedup_no_churn": speedups},
    )
    record_trajectory(
        "service_throughput",
        {
            "max_qps": max(stats["qps"] for stats in rows.values()),
            **{f"cache_speedup_{label}": value for label, value in speedups.items()},
        },
        scale={"objects": SERVICE_N, "queries": SERVICE_QUERIES, "repeats": REPEATS},
    )

    # The acceptance bar: on a repeated workload the cache must be worth
    # at least 2× q/s over running every request through the engine.
    if REPEATS >= 4:
        for label, speedup in speedups.items():
            assert speedup >= MIN_CACHE_SPEEDUP, (
                f"cache-on q/s only {speedup:.2f}× cache-off at {label} "
                f"(needs ≥ {MIN_CACHE_SPEEDUP}×)"
            )
