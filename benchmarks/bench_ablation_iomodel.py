"""Ablation — the disk-resident storage model (Section 6.1's setting).

The paper's indexes live on disk in 4 KB pages; this repo's run in RAM.
The one place that changes a *conclusion* is the IR-tree: in memory its
per-node token sets are nearly free, so it beats the Spatial baseline
here, whereas the paper measured it as worse ("IR-tree also achieved low
performance, and it was even worse than Spatial").

This bench replays the Figure-16 workload through the LRU buffer-pool
I/O model, charging each method the pages its probes touch.  Expectation
(reproducing the paper's disk-resident ordering): the IR-tree's page
reads dwarf every signature method's — its inverted files are re-read at
every visited node — and adding modelled I/O time flips IR-tree vs
Spatial back to the paper's ordering.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, measure_workload
from repro.index.iomodel import compare_methods_io

from benchmarks.conftest import DEFAULT_TAU, emit

POOL_PAGES = 2048
READ_LATENCY_MS = 0.05  # fast SSD; 2012-era disks were ~100x slower


@pytest.mark.benchmark(group="ablation-io")
def test_ablation_io_model(benchmark, twitter_methods, twitter_small_queries_bench):
    queries = [
        q.with_thresholds(tau_r=DEFAULT_TAU, tau_t=DEFAULT_TAU)
        for q in twitter_small_queries_bench
    ]

    def run():
        reports = compare_methods_io(
            twitter_methods, queries, pool_pages=POOL_PAGES, read_latency_ms=READ_LATENCY_MS
        )
        cpu = {name: measure_workload(m, queries) for name, m in twitter_methods.items()}
        return reports, cpu

    reports, cpu = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = {}
    for name in twitter_methods:
        io = reports[name]
        rows[name] = [
            io.logical_reads,
            io.physical_reads,
            round(io.io_ms_per_query, 3),
            round(cpu[name].elapsed_ms, 3),
            round(cpu[name].elapsed_ms + io.io_ms_per_query, 3),
        ]
    emit(
        format_table(
            "Ablation: disk I/O model (small-region queries, tau=0.4; "
            f"LRU pool {POOL_PAGES} pages, {READ_LATENCY_MS} ms/read)",
            "method",
            ["logical", "physical", "io ms/q", "cpu ms/q", "total ms/q"],
            rows,
        )
    )
