"""Filter-phase probe throughput: ``python`` vs ``columnar`` backend.

Not a paper figure — this isolates the tentpole of the columnar-storage
refactor: the *filter step only* (``method.candidates``), with no
verification, so the numbers measure exactly what the CSR posting arrays
and vectorised probe kernels buy over the per-list ``bisect``/slice
reference backend.

The workload is filter-bound on purpose — large regions and
recall-oriented thresholds produce long qualifying heads, the regime the
paper's memory-bound filter lives in (Figures 3–6).  Five method
configurations span the three probe kernels:

* ``token`` — single-bound prefix probes + head unions;
* ``token (plain)`` — the no-pruning accumulate kernel (Sig-Filter);
* ``grid`` — single-bound probes over cell lists;
* ``hash-hybrid`` — dual-bound probes with vectorised textual masking;
* ``seal`` — the paper's best method, dual-bound per-token grids.

Expected shape: the columnar win grows with postings scanned per query —
large for the token kernels (thousands of entries), near parity for
``hash-hybrid``/``seal``, whose filters are *selectivity*-bound (a
handful of near-empty lists per query — SEAL's own pruning at work), so
per-query signature setup dominates and the backend barely matters.  The
``suite total`` row divides total workload wall time python/columnar.

Results print as a fixed-width table plus a JSON report; set
``REPRO_BENCH_JSON=<dir>`` to also write the JSON to a file (CI uploads
it as the bench artifact).
"""

from __future__ import annotations

import os

import pytest

from repro import TokenWeighter, build_method
from repro.bench import format_table, measure_throughput
from repro.core.stats import SearchStats
from repro.datasets import generate_queries

from benchmarks.conftest import (
    emit,
    make_twitter_corpus,
    record_trajectory,
    report_json,
    scaled_granularity,
)

PROBE_N = int(os.environ.get("REPRO_BENCH_PROBE_N", "10000"))
PROBE_QUERIES = int(os.environ.get("REPRO_BENCH_PROBE_QUERIES", "64"))
REPEATS = int(os.environ.get("REPRO_BENCH_PROBE_REPEATS", "3"))

#: Default thresholds: recall-oriented, so qualifying heads carry weight.
PROBE_TAU = float(os.environ.get("REPRO_BENCH_PROBE_TAU", "0.05"))

#: Display name -> (registry name, constructor params).
PROBE_METHODS = {
    "token": ("token", {}),
    "token (plain)": ("token", {"prefix_pruning": False}),
    "grid": ("grid", {"granularity": scaled_granularity(1024, PROBE_N)}),
    "hash-hybrid": ("hash-hybrid", {"granularity": scaled_granularity(256, PROBE_N)}),
    "seal": ("seal", {"mt": 16, "max_level": 7, "min_objects": 8}),
}


@pytest.fixture(scope="module")
def corpus():
    return make_twitter_corpus(PROBE_N)


@pytest.fixture(scope="module")
def weighter(corpus):
    return TokenWeighter(obj.tokens for obj in corpus)


@pytest.fixture(scope="module")
def filter_bound_queries(corpus):
    """Large regions + low thresholds: long qualifying heads, so the
    filter step carries real per-posting work on every probe."""
    return list(
        generate_queries(
            corpus, "large", num_queries=PROBE_QUERIES, seed=13,
            tau_r=PROBE_TAU, tau_t=PROBE_TAU,
        )
    )


@pytest.mark.benchmark(group="index-probe")
def test_filter_phase_python_vs_columnar(benchmark, corpus, weighter, filter_bound_queries):
    def run():
        rows = {}
        payload = {}
        for label, (name, params) in PROBE_METHODS.items():
            built = {
                backend: build_method(corpus, name, weighter, backend=backend, **params)
                for backend in ("python", "columnar")
            }
            # Identical filter output is the precondition for comparing
            # speed; assert it on the first query rather than trusting it.
            probe_query = filter_bound_queries[0]
            assert sorted(
                int(o) for o in built["python"].candidates(probe_query, SearchStats())
            ) == sorted(
                int(o) for o in built["columnar"].candidates(probe_query, SearchStats())
            )

            measurements = {}
            for backend, method in built.items():
                candidates = method.candidates

                def filter_phase(queries):
                    for query in queries:
                        candidates(query, SearchStats())

                measurements[backend] = measure_throughput(
                    filter_phase, filter_bound_queries, repeats=REPEATS
                )
            speedup = (
                measurements["columnar"].qps / measurements["python"].qps
                if measurements["python"].qps
                else 0.0
            )
            rows[label] = [
                round(measurements["python"].qps),
                round(measurements["columnar"].qps),
                f"{speedup:.2f}x",
            ]
            payload[label] = {
                "python": measurements["python"],
                "columnar": measurements["columnar"],
                "speedup": speedup,
            }
        # Aggregate: total wall time to run the whole method suite's
        # filter phases, python vs columnar.
        python_seconds = sum(entry["python"].elapsed_seconds for entry in payload.values())
        columnar_seconds = sum(
            entry["columnar"].elapsed_seconds for entry in payload.values()
        )
        suite_speedup = python_seconds / columnar_seconds if columnar_seconds else 0.0
        rows["suite total"] = [
            round(len(payload) * PROBE_QUERIES / python_seconds) if python_seconds else 0,
            round(len(payload) * PROBE_QUERIES / columnar_seconds) if columnar_seconds else 0,
            f"{suite_speedup:.2f}x",
        ]
        payload["suite"] = {
            "python_seconds": python_seconds,
            "columnar_seconds": columnar_seconds,
            "speedup": suite_speedup,
        }
        return rows, payload

    rows, payload = benchmark.pedantic(run, rounds=1, iterations=1)
    title = (
        f"Filter-phase throughput, python vs columnar index backend — "
        f"{PROBE_N} objects, {PROBE_QUERIES} filter-bound queries (queries/sec)"
    )
    emit(format_table(title, "method", ["python q/s", "columnar q/s", "speedup"], rows))
    report_json("index_probe.json", title, payload)
    record_trajectory(
        "index_probe",
        {
            "suite_python_seconds": payload["suite"]["python_seconds"],
            "suite_columnar_seconds": payload["suite"]["columnar_seconds"],
            "suite_speedup": payload["suite"]["speedup"],
        },
        scale={"objects": PROBE_N, "queries": PROBE_QUERIES},
    )
