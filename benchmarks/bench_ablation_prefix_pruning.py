"""Ablation — threshold-aware pruning (Sig-Filter vs Sig-Filter+).

Section 4.2 introduces two improvements over the plain Sig-Filter:
query-side signature prefixes (Lemma 2) and per-posting threshold bounds
(Lemma 3).  This bench runs both variants of the token and grid filters
to show what the `+` buys — fewer probed lists and far fewer retrieved
entries, at the cost of a (slightly) looser candidate set (the union
replaces the exact signature-similarity check).
"""

from __future__ import annotations

import pytest

from repro import GridFilter, TokenFilter
from repro.bench import format_table, measure_workload

from benchmarks.conftest import emit, scaled_granularity

GRANULARITY = scaled_granularity(512)


@pytest.fixture(scope="module")
def variants(twitter_corpus, twitter_weighter):
    return {
        "TokenFilter (Sig-Filter+)": TokenFilter(twitter_corpus, twitter_weighter),
        "TokenFilter (Sig-Filter)": TokenFilter(
            twitter_corpus, twitter_weighter, prefix_pruning=False
        ),
        "GridFilter (Sig-Filter+)": GridFilter(twitter_corpus, twitter_weighter, granularity=GRANULARITY),
        "GridFilter (Sig-Filter)": GridFilter(
            twitter_corpus, twitter_weighter, granularity=GRANULARITY, prefix_pruning=False
        ),
    }


@pytest.mark.benchmark(group="ablation-prefix")
def test_ablation_prefix_pruning(benchmark, variants, twitter_small_queries_bench):
    queries = list(twitter_small_queries_bench)

    def run():
        return {name: measure_workload(m, queries) for name, m in variants.items()}

    measures = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = {
        name: [
            round(m.elapsed_ms, 3),
            round(m.lists_probed, 1),
            round(m.entries_retrieved, 1),
            round(m.candidates, 1),
        ]
        for name, m in measures.items()
    }
    emit(
        format_table(
            "Ablation: threshold-aware pruning (small-region queries)",
            "variant",
            ["ms/query", "lists", "entries", "candidates"],
            rows,
        )
    )
