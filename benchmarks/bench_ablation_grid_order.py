"""Ablation — the global grid order (Section 4.2, footnote 4).

The paper fixes the ascending-``count(g)`` order and defers studying
alternatives to future work.  This bench quantifies the footnote: the
same GridFilter with four different global orders.  Expectation: the
paper's ``count_asc`` probes the most selective lists first and wins (or
ties) on entries retrieved; ``count_desc`` is the adversarial worst case.
"""

from __future__ import annotations

import pytest

from repro import build_method
from repro.bench import format_table, measure_workload

from benchmarks.conftest import emit, scaled_granularity

ORDERS = ("count_asc", "count_desc", "cell_id", "hilbert")
GRANULARITY = scaled_granularity(512)


@pytest.fixture(scope="module")
def ordered_filters(twitter_corpus, twitter_weighter):
    return {
        order: build_method(
            twitter_corpus, "grid", twitter_weighter, granularity=GRANULARITY, order=order
        )
        for order in ORDERS
    }


@pytest.mark.benchmark(group="ablation-grid-order")
def test_ablation_grid_order(benchmark, ordered_filters, twitter_small_queries_bench):
    queries = list(twitter_small_queries_bench)

    def run():
        return {order: measure_workload(f, queries) for order, f in ordered_filters.items()}

    measures = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = {
        order: [
            round(m.elapsed_ms, 3),
            round(m.lists_probed, 1),
            round(m.entries_retrieved, 1),
            round(m.candidates, 1),
        ]
        for order, m in measures.items()
    }
    emit(
        format_table(
            "Ablation: global grid order (GridFilter 512, small-region queries)",
            "order",
            ["ms/query", "lists", "entries", "candidates"],
            rows,
        )
    )
