"""Replication: catch-up lag vs a bounded ingest rate on the primary.

Not a paper figure — this prices the tentpole of the WAL-shipping
replication PR.  The claim under test: a read replica tailing the
primary's log **keeps pace** with a bounded write rate — its byte lag
stays bounded while ingest runs, and once ingest stops it drains to
zero in far less time than the ingest took — so read scale-out never
turns into unbounded staleness.

The run: a durable primary seeded with ``REPRO_BENCH_REPL_N`` objects
serves over TCP with a :class:`ReplicationPrimary` attached; a
:class:`ReplicaApplier` bootstraps from the shipped checkpoint
(timed), then tails while a driver thread inserts
``REPRO_BENCH_REPL_INSERTS`` objects at ``REPRO_BENCH_REPL_RATE``
per second.  A sampler records the replica's byte lag over time; when
ingest stops, the drain to zero lag is timed.  The bench is also a
differential test: the caught-up replica must answer a query workload
bit-identically to the primary.

Asserted at every scale: the replica applied every record, answers
match, and catch-up after ingest stops takes under
``REPRO_BENCH_REPL_MAX_CATCHUP`` seconds (default 10).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import Rect
from repro.bench import format_table
from repro.datasets import generate_queries
from repro.exec.durable import DurableSegmentedSealSearch
from repro.service import NetworkServer, QueryService
from repro.service.replication import ReplicaApplier, ReplicationPrimary

from benchmarks.conftest import emit, make_twitter_corpus, record_trajectory, report_json

REPL_N = int(os.environ.get("REPRO_BENCH_REPL_N", "4000"))
REPL_INSERTS = int(os.environ.get("REPRO_BENCH_REPL_INSERTS", "600"))
REPL_RATE = float(os.environ.get("REPRO_BENCH_REPL_RATE", "300"))
REPL_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "16"))

#: The acceptance bar: seconds the replica may take to drain its lag
#: after ingest stops.  Generous — the honest claim is "bounded", and a
#: loaded CI runner should not flake it — while still far below the
#: ingest window at the default rate.
MAX_CATCHUP_SECONDS = float(os.environ.get("REPRO_BENCH_REPL_MAX_CATCHUP", "10"))

#: Lag sampling period while ingest runs.
SAMPLE_SECONDS = 0.05


@pytest.fixture(scope="module")
def corpus():
    return make_twitter_corpus(REPL_N)


@pytest.fixture(scope="module")
def repl_queries(corpus):
    return list(
        generate_queries(corpus, "small", num_queries=REPL_QUERIES,
                         seed=13, tau_r=0.2, tau_t=0.2)
    )


def _ingest(primary, count: int, rate: float, space: Rect) -> float:
    """Insert ``count`` objects at ``rate``/s; returns elapsed seconds."""
    interval = 1.0 / rate if rate > 0 else 0.0
    width = (space.x2 - space.x1) or 1.0
    started = time.perf_counter()
    for i in range(count):
        x = space.x1 + (i * 0.37) % width
        primary.insert(
            Rect(x, space.y1, x + 0.5, space.y1 + 0.5),
            {"coffee", f"ingest{i % 7}"},
        )
        target = started + (i + 1) * interval
        delay = target - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
    return time.perf_counter() - started


@pytest.mark.benchmark(group="replication")
def test_replica_catchup_keeps_pace_with_ingest(
    benchmark, corpus, repl_queries, tmp_path
):
    pairs = [(obj.region, obj.tokens) for obj in corpus]
    space = Rect(
        min(o.region.x1 for o in corpus),
        min(o.region.y1 for o in corpus),
        max(o.region.x2 for o in corpus),
        max(o.region.y2 for o in corpus),
    )
    primary = DurableSegmentedSealSearch.create(
        pairs,
        "token",
        wal_path=tmp_path / "primary.wal",
        snapshot_path=tmp_path / "primary.pkl",
        buffer_capacity=256,
    )

    def run():
        service = QueryService(primary, enable_cache=False, workers=2)
        service.replication = ReplicationPrimary(primary)
        samples: list = []
        with service, NetworkServer(service) as server:
            host, port = server.address
            applier = ReplicaApplier(
                host, port, root=tmp_path / "replica", poll_interval=0.002
            )
            boot_started = time.perf_counter()
            applier.start()
            bootstrap_seconds = time.perf_counter() - boot_started

            stop_sampling = threading.Event()

            def sample() -> None:
                while not stop_sampling.is_set():
                    lag = applier.lag_bytes()
                    if lag is not None:
                        samples.append(lag)
                    time.sleep(SAMPLE_SECONDS)

            sampler = threading.Thread(target=sample)
            sampler.start()
            ingest_seconds = _ingest(primary, REPL_INSERTS, REPL_RATE, space)
            drain_started = time.perf_counter()
            deadline = drain_started + MAX_CATCHUP_SECONDS
            while True:
                # The applier owns the lag clock; poll it to zero.  The
                # final fetch is also the final ack, so zero here means
                # every shipped byte was applied.
                lag = applier.lag_bytes()
                position = primary.stable_position
                caught_up = (
                    lag == 0
                    and applier.lineage
                    == (position["generation"], position["offset"])
                )
                if caught_up or time.perf_counter() > deadline:
                    break
                time.sleep(0.005)
            catchup_seconds = time.perf_counter() - drain_started
            stop_sampling.set()
            sampler.join()
            assert caught_up, (
                f"replica failed to drain its lag within {MAX_CATCHUP_SECONDS}s "
                f"of ingest stopping (lag {applier.lag_bytes()} bytes)"
            )

            # Differential: the caught-up replica answers identically.
            expected = [primary.search_query(q).answers for q in repl_queries]
            with applier.manager.reading() as (engine, _epoch):
                got = [engine.search_query(q).answers for q in repl_queries]
            assert got == expected, "replica answers diverged from the primary"
            status = applier.status()
            applier.stop()
        return {
            "bootstrap_seconds": bootstrap_seconds,
            "ingest_seconds": ingest_seconds,
            "catchup_seconds": catchup_seconds,
            "applied_records": status["applied_records"],
            "shipments": status["shipments"],
            "max_lag_bytes": max(samples) if samples else 0,
            "mean_lag_bytes": sum(samples) / len(samples) if samples else 0.0,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    primary.close()

    ingest_rate = REPL_INSERTS / stats["ingest_seconds"]
    title = (
        f"Replication catch-up — {REPL_N}-object primary, {REPL_INSERTS} "
        f"inserts at {REPL_RATE:.0f}/s target ({ingest_rate:.0f}/s achieved)"
    )
    table = {
        "bootstrap": [f"{stats['bootstrap_seconds'] * 1000:.0f} ms"],
        "ingest window": [f"{stats['ingest_seconds']:.2f} s"],
        "lag while ingesting": [
            f"max {stats['max_lag_bytes']} B, "
            f"mean {stats['mean_lag_bytes']:.0f} B"
        ],
        "catch-up after stop": [f"{stats['catchup_seconds'] * 1000:.0f} ms"],
        "records applied": [
            f"{stats['applied_records']} over {stats['shipments']} shipments"
        ],
    }
    emit(format_table(title, "phase", ["measured"], table))
    report_json("bench_replication.json", title, {"stats": stats,
                                                  "ingest_rate": ingest_rate})
    record_trajectory(
        "replication_catchup",
        {
            "bootstrap_seconds": stats["bootstrap_seconds"],
            "ingest_rate": ingest_rate,
            "catchup_seconds": stats["catchup_seconds"],
            "max_lag_bytes": stats["max_lag_bytes"],
            "mean_lag_bytes": stats["mean_lag_bytes"],
            "applied_records": stats["applied_records"],
        },
        scale={"objects": REPL_N, "inserts": REPL_INSERTS, "rate": REPL_RATE},
    )

    # The replica must have applied every ingested record (the engines
    # already answered identically above; this pins the op count too).
    assert stats["applied_records"] >= REPL_INSERTS
