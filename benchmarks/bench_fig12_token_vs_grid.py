"""Figure 12 — TokenFilter vs GridFilter (four panels, Twitter).

Panels: (a) large-region queries, vary τR; (b) large-region, vary τT;
(c) small-region, vary τR; (d) small-region, vary τT.  Series:
TokenFilter and GridFilter at granularities 256, 512, 1024.

Paper shape to reproduce: TokenFilter wins at small τR / large τT,
GridFilter gains as τR grows (spatial pruning bites) — i.e. the two
curves cross, motivating the hybrid (Section 6.2's conclusion: "it is
better to combine both filters").
"""

from __future__ import annotations

import pytest

from repro.bench import format_series_table, sweep

from benchmarks.conftest import GRANULARITIES, TAUS, emit


@pytest.fixture(scope="module")
def methods(twitter_method_matrix):
    out = {"TokenFilter": twitter_method_matrix["token"]}
    for g in GRANULARITIES:
        out[f"GridFilter({g})"] = twitter_method_matrix[f"grid-{g}"]
    return out


def _panel(benchmark, methods, queries, axis, title):
    def run():
        return {
            name: sweep(method, list(queries), TAUS, axis)
            for name, method in methods.items()
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_series_table(title, axis, series, metric="elapsed_ms"))
    emit(format_series_table(title + " — candidates", axis, series, metric="candidates"))
    return series


@pytest.mark.benchmark(group="fig12")
def test_fig12a_large_vary_tau_r(benchmark, methods, twitter_large_queries):
    _panel(
        benchmark, methods, twitter_large_queries, "tau_r",
        "Figure 12(a): Token vs Grid, large-region queries, vary tau_r (ms/query)",
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12b_large_vary_tau_t(benchmark, methods, twitter_large_queries):
    _panel(
        benchmark, methods, twitter_large_queries, "tau_t",
        "Figure 12(b): Token vs Grid, large-region queries, vary tau_t (ms/query)",
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12c_small_vary_tau_r(benchmark, methods, twitter_small_queries_bench):
    _panel(
        benchmark, methods, twitter_small_queries_bench, "tau_r",
        "Figure 12(c): Token vs Grid, small-region queries, vary tau_r (ms/query)",
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12d_small_vary_tau_t(benchmark, methods, twitter_small_queries_bench):
    _panel(
        benchmark, methods, twitter_small_queries_bench, "tau_t",
        "Figure 12(d): Token vs Grid, small-region queries, vary tau_t (ms/query)",
    )
