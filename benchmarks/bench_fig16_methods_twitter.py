"""Figure 16 — SEAL vs IR-tree / Keyword / Spatial on Twitter.

The headline comparison: the paper's SEAL (hierarchical hybrid
signatures) against the three baselines, four panels (large/small region
× vary τR/τT).  Shape to reproduce: SEAL fastest at every threshold —
"several tens of times faster than the baseline methods" — with Keyword
hurt by low τT (no textual pruning of its huge candidate sets... its
*only* pruning), Spatial hurt by low τR, and the IR-tree paying for loose
hierarchical bounds.
"""

from __future__ import annotations

import pytest

from repro.bench import format_series_table, measure_workload, sweep

from benchmarks.conftest import DEFAULT_TAU, TAUS, emit


def _panel(benchmark, methods, queries, axis, title):
    def run():
        return {
            name: sweep(method, list(queries), TAUS, axis)
            for name, method in methods.items()
        }

    series = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_series_table(title, axis, series, metric="elapsed_ms"))
    emit(format_series_table(title + " — candidates", axis, series, metric="candidates"))


@pytest.mark.benchmark(group="fig16-panels")
def test_fig16a_large_vary_tau_r(benchmark, twitter_methods, twitter_large_queries):
    _panel(
        benchmark, twitter_methods, twitter_large_queries, "tau_r",
        "Figure 16(a): methods on Twitter, large-region queries, vary tau_r (ms/query)",
    )


@pytest.mark.benchmark(group="fig16-panels")
def test_fig16b_large_vary_tau_t(benchmark, twitter_methods, twitter_large_queries):
    _panel(
        benchmark, twitter_methods, twitter_large_queries, "tau_t",
        "Figure 16(b): methods on Twitter, large-region queries, vary tau_t (ms/query)",
    )


@pytest.mark.benchmark(group="fig16-panels")
def test_fig16c_small_vary_tau_r(benchmark, twitter_methods, twitter_small_queries_bench):
    _panel(
        benchmark, twitter_methods, twitter_small_queries_bench, "tau_r",
        "Figure 16(c): methods on Twitter, small-region queries, vary tau_r (ms/query)",
    )


@pytest.mark.benchmark(group="fig16-panels")
def test_fig16d_small_vary_tau_t(benchmark, twitter_methods, twitter_small_queries_bench):
    _panel(
        benchmark, twitter_methods, twitter_small_queries_bench, "tau_t",
        "Figure 16(d): methods on Twitter, small-region queries, vary tau_t (ms/query)",
    )


# Per-method single-point benchmarks at the default thresholds: these give
# pytest-benchmark's statistics (stddev, rounds) for the paper's headline
# comparison point.
@pytest.mark.benchmark(group="fig16-default-point")
@pytest.mark.parametrize("method_name", ["IR-Tree", "Keyword", "Spatial", "SEAL"])
def test_fig16_default_thresholds(
    benchmark, twitter_methods, twitter_small_queries_bench, method_name
):
    method = twitter_methods[method_name]
    queries = [
        q.with_thresholds(tau_r=DEFAULT_TAU, tau_t=DEFAULT_TAU)
        for q in twitter_small_queries_bench
    ]
    measurement = benchmark.pedantic(
        lambda: measure_workload(method, queries), rounds=3, iterations=1
    )
    emit(
        f"fig16 default point — {method_name}: "
        f"{measurement.elapsed_ms:.3f} ms/query, "
        f"{measurement.candidates:.1f} candidates/query"
    )
