"""Planner benchmark — adaptive dispatch vs every fixed filter method.

The planner's pitch: on a *mixed* workload no fixed method wins, because
each filter has a regime where it degrades — the token filter on
text-vacuous thresholds (``τT → 0`` degenerates it to a full scan), the
spatial filters on ``τR = 0``, the hybrids on either, and between the
extremes the Figure-12/14 crossovers move the optimum around.  A planner
that spends microseconds estimating each method's work per query should
track the per-query optimum and beat every fixed choice on the mix.

The workload here has four regimes in equal parts (large-region,
small-region, spatial-only ``τT = 0``, textual-only ``τR = 0``), the
planner goes through the full **record → fit → serve** workflow on a
disjoint training mix first, and the bench asserts the headline claims
the README quotes:

* planner suite time ≤ 1/0.95 × the best fixed method (within 5% of an
  oracle that somehow knew the best *fixed* choice in advance), and
* ≥ 1.5× faster than the worst fixed method (the cost of committing to
  one filter on a mixed workload).

Answers are bit-identical across all methods by construction (shared
exact verification); ``tests/test_planner.py`` pins that differentially.
"""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.bench import format_table
from repro.datasets import generate_queries
from repro.exec.planner import PlannedSealSearch

from benchmarks.conftest import (
    BENCH_N,
    BENCH_QUERIES,
    emit,
    record_trajectory,
    report_json,
)

#: The fixed methods the planner is raced against — exactly its portfolio,
#: at the canonical matrix configurations.
PORTFOLIO = {
    "token": "token",
    "grid": "grid-256",
    "hash-hybrid": "hybrid-256",
    "seal": "seal",
}


def _mixed_workload(corpus, *, seed: int):
    """Four equal regimes; each is some fixed method's bad day.

    The spatial-only and textual-only regimes carry a vacuous threshold
    on the other axis, which degenerates every filter that signatures on
    that axis to a full corpus scan (see the filters' ``_is_degenerate``)
    — the sharpest, scale-independent form of the regime crossings in
    Figures 12 and 14.
    """
    large = generate_queries(corpus, "large", BENCH_QUERIES, seed=seed,
                             tau_r=0.4, tau_t=0.4)
    small = generate_queries(corpus, "small", BENCH_QUERIES, seed=seed + 1,
                             tau_r=0.4, tau_t=0.4)
    spatial_only = [q.with_thresholds(tau_r=0.3, tau_t=0.0) for q in small]
    textual_only = [q.with_thresholds(tau_r=0.0, tau_t=0.3) for q in small]
    return {
        "large": list(large),
        "small": list(small),
        "spatial-only": spatial_only,
        "textual-only": textual_only,
    }


@pytest.fixture(scope="module")
def fixed_methods(twitter_method_matrix):
    return {name: twitter_method_matrix[key] for name, key in PORTFOLIO.items()}


@pytest.fixture(scope="module")
def fitted_planner(twitter_corpus, twitter_weighter, twitter_method_matrix):
    """A planner over the portfolio, calibrated record → fit → serve.

    Knobs mirror the matrix configurations exactly, so the planner's
    sub-methods and the fixed baselines are the same indexes
    parameter-for-parameter and the race is purely about dispatch.
    """
    knobs = {
        **twitter_method_matrix.knobs("grid-256"),
        **twitter_method_matrix.knobs("hybrid-256"),
        **twitter_method_matrix.knobs("seal"),
    }
    record_path = os.path.join(tempfile.mkdtemp(prefix="planner-bench-"),
                               "training.jsonl")
    planner = PlannedSealSearch(
        twitter_corpus, twitter_weighter,
        methods=tuple(PORTFOLIO), record_to=record_path, **knobs,
    )
    # Record: a disjoint training mix (different seed), every portfolio
    # method measured per query.  Fit: least-squares coefficients from
    # those observations.  Serve: recording off, fitted model on.
    training = [q for regime in _mixed_workload(twitter_corpus, seed=29).values()
                for q in regime]
    for query in training:
        planner.search(query)
    planner.flush_recording()
    planner.fit()
    planner._record_path = None
    return planner


def _suite_ms(method, workload) -> dict:
    """Total wall ms per regime (and overall) for one method."""
    from repro.bench import measure_workload

    per_regime = {}
    for regime, queries in workload.items():
        measurement = measure_workload(method, queries)
        per_regime[regime] = measurement.elapsed_ms * measurement.queries
    per_regime["total"] = sum(per_regime.values())
    return per_regime


@pytest.mark.benchmark(group="planner")
def test_planner_vs_fixed_methods(benchmark, twitter_corpus, fixed_methods,
                                  fitted_planner):
    workload = _mixed_workload(twitter_corpus, seed=31)

    def run():
        suites = {name: _suite_ms(method, workload)
                  for name, method in fixed_methods.items()}
        suites["planned"] = _suite_ms(fitted_planner, workload)
        return suites

    suites = benchmark.pedantic(run, rounds=1, iterations=1)

    planner_ms = suites["planned"]["total"]
    fixed_totals = {name: suites[name]["total"] for name in fixed_methods}
    best_name = min(fixed_totals, key=fixed_totals.get)
    worst_name = max(fixed_totals, key=fixed_totals.get)
    best_ms, worst_ms = fixed_totals[best_name], fixed_totals[worst_name]

    regimes = [r for r in workload] + ["total"]
    rows = {name: [round(suite[r], 2) for r in regimes]
            for name, suite in suites.items()}
    emit(format_table(
        "Planner vs fixed methods: suite wall ms by regime "
        f"(mixed workload, {sum(len(q) for q in workload.values())} queries)",
        "method", regimes, rows,
    ))

    selections = fitted_planner.metrics.as_dict()["selections"]
    data = {
        "planner_ms": round(planner_ms, 3),
        "best_fixed": best_name,
        "best_fixed_ms": round(best_ms, 3),
        "worst_fixed": worst_name,
        "worst_fixed_ms": round(worst_ms, 3),
        "speedup_vs_worst": round(worst_ms / planner_ms, 3),
        "ratio_vs_best": round(best_ms / planner_ms, 3),
        "selections": selections,
        "per_method_suite_ms": {n: round(v, 3) for n, v in fixed_totals.items()},
    }
    report_json("bench_planner.json", "Planner vs fixed methods (mixed workload)", data)
    record_trajectory(
        "planner_vs_fixed",
        {
            "planner_ms": planner_ms,
            "best_fixed_ms": best_ms,
            "worst_fixed_ms": worst_ms,
            "speedup_vs_worst": worst_ms / planner_ms,
            "ratio_vs_best": best_ms / planner_ms,
            "mispredicts": fitted_planner.metrics.as_dict()["mispredicts"],
        },
        scale={"objects": BENCH_N, "queries": 4 * BENCH_QUERIES},
    )

    # The headline claims, enforced: within 5% of the best fixed method,
    # at least 1.5x over the worst.
    assert planner_ms <= best_ms / 0.95, (
        f"planner {planner_ms:.1f} ms lost to best fixed "
        f"{best_name} {best_ms:.1f} ms by more than 5%"
    )
    assert worst_ms / planner_ms >= 1.5, (
        f"planner {planner_ms:.1f} ms is not >=1.5x faster than worst fixed "
        f"{worst_name} {worst_ms:.1f} ms"
    )
