"""Figure 15 — hash-based vs hierarchical hybrid signatures vs index size.

The paper fixes τR = 0.4, τT = 0.1 and compares the two hybrid signature
families under *index-size constraints*, defined as "maximum numbers of
signature elements" (Section 5.2): the hash scheme meets a budget by
hashing (token, cell) pairs into that many buckets (Section 5.1), the
hierarchical scheme by capping each token's HSS grid allocation.

We therefore compare at matched element counts: each hierarchical
configuration (α scaling of per-token budgets) is measured, then a hash
index is built with exactly that many buckets.  Shape to reproduce: in
the constrained regime the hierarchical signatures answer queries with
fewer candidates — bucket collisions cost the hash scheme false
candidates, while HSS spends the same elements where the data lives.
(At generous budgets the collision penalty vanishes and the two
converge; EXPERIMENTS.md discusses the crossover.)
"""

from __future__ import annotations

import pytest

from repro import build_method
from repro.bench import format_table, measure_workload

from benchmarks.conftest import GRANULARITIES, emit, scaled_granularity

TAU_R, TAU_T = 0.4, 0.1

#: (α, per-token cap) pairs spanning tight → generous element budgets.
HIERARCHICAL_CONFIGS = ((0.02, 128), (0.05, 256), (0.1, 512), (0.2, 1024))

#: Hash grid fixed at the paper's finest canonical granularity; the
#: budget knob is the bucket count, as in Section 5.1.
HASH_GRANULARITY = GRANULARITIES[-1]


@pytest.fixture(scope="module")
def matched_methods(twitter_corpus, twitter_weighter):
    """Build hierarchical indexes, then hash indexes at matching element
    counts."""
    pairs = []
    for alpha, cap in HIERARCHICAL_CONFIGS:
        hier = build_method(
            twitter_corpus, "seal", twitter_weighter,
            mt=cap, max_level=10, min_objects=4, budget_scaling=alpha,
        )
        elements = len(hier.index)
        hashed = build_method(
            twitter_corpus, "hash-hybrid", twitter_weighter,
            granularity=scaled_granularity(HASH_GRANULARITY), num_buckets=elements,
        )
        pairs.append((elements, hier, hashed))
    return pairs


def _panel(benchmark, matched_methods, queries, title):
    stamped = [q.with_thresholds(tau_r=TAU_R, tau_t=TAU_T) for q in queries]

    def run():
        rows = {}
        for elements, hier, hashed in matched_methods:
            mh = measure_workload(hashed, stamped)
            mm = measure_workload(hier, stamped)
            rows[f"budget={elements}"] = [
                round(hashed.index_size().total_mb, 2),
                round(mh.elapsed_ms, 3),
                round(mh.candidates, 1),
                round(hier.index_size().total_mb, 2),
                round(mm.elapsed_ms, 3),
                round(mm.candidates, 1),
            ]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        format_table(
            title,
            "element budget",
            ["hash MB", "hash ms", "hash cand", "hier MB", "hier ms", "hier cand"],
            rows,
        )
    )


@pytest.mark.benchmark(group="fig15")
def test_fig15a_large_region(benchmark, matched_methods, twitter_large_queries):
    _panel(
        benchmark, matched_methods, list(twitter_large_queries),
        "Figure 15(a): hash vs hierarchical signatures, large-region (tauR=0.4, tauT=0.1)",
    )


@pytest.mark.benchmark(group="fig15")
def test_fig15b_small_region(benchmark, matched_methods, twitter_small_queries_bench):
    _panel(
        benchmark, matched_methods, list(twitter_small_queries_bench),
        "Figure 15(b): hash vs hierarchical signatures, small-region (tauR=0.4, tauT=0.1)",
    )
