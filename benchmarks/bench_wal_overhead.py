"""WAL insert-throughput overhead per sync policy, vs a no-WAL baseline.

Not a paper figure — this prices the durability layer (PR 5).  Every
acknowledged mutation is appended to the write-ahead log *before* the
engine applies it, so the insert path gains a serialization + write
(+ fsync, per policy) on top of the segmented engine's own buffered
append and amortised segment builds.  The question an operator needs
answered: what does each point on the durability dial cost?

* **no wal**  — the raw :class:`~repro.exec.segments.SegmentedSealSearch`
  insert path (the ceiling);
* **wal none** — append + OS-buffered flush, no fsync (durability on
  the OS's schedule; loses the crash guarantee, keeps the replay log);
* **wal batch** — group commit: one fsync per ``GROUP_SIZE`` appends
  (the production setting — bounded loss window, amortised fsync cost);
* **wal always** — one fsync per insert (strict durability, the floor).

Also reported: recovery cost — wall seconds for :func:`repro.exec.
durable.recover` to replay the full insert log back into an engine,
the number that bounds restart time after a crash.

The acceptance gate asserts group commit keeps at least half the
baseline insert throughput (``batch ≥ 0.5× no-wal``).

Scaled by ``REPRO_BENCH_N`` (churn volume; default 10000).  Results
print as a fixed-width table plus a JSON report; set
``REPRO_BENCH_JSON=<dir>`` to also write the JSON to a file (CI uploads
it as the bench artifact).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.bench import format_table
from repro.exec.durable import DurableSegmentedSealSearch, recover
from repro.exec.segments import SegmentedSealSearch

from benchmarks.conftest import emit, make_twitter_corpus, record_trajectory, report_json

WAL_N = int(os.environ.get("REPRO_BENCH_N", "10000"))
METHOD = os.environ.get("REPRO_BENCH_WAL_METHOD", "token")
BUFFER_CAP = int(os.environ.get("REPRO_BENCH_WAL_BUFFER", "256"))
GROUP_SIZE = int(os.environ.get("REPRO_BENCH_WAL_GROUP", "32"))

#: The acceptance floor: group commit must keep at least this fraction
#: of the no-WAL insert throughput.
BATCH_FLOOR = 0.5


@pytest.fixture(scope="module")
def churn_objects():
    return make_twitter_corpus(WAL_N)


def _timed_inserts(engine, objects) -> float:
    started = time.perf_counter()
    for obj in objects:
        engine.insert(obj.region, obj.tokens)
    return time.perf_counter() - started


@pytest.mark.benchmark(group="wal")
def test_wal_insert_overhead(benchmark, churn_objects, tmp_path):
    def run():
        stats = {}
        baseline = SegmentedSealSearch(method=METHOD, buffer_capacity=BUFFER_CAP)
        seconds = _timed_inserts(baseline, churn_objects)
        stats["no wal"] = {
            "inserts_per_sec": len(churn_objects) / seconds,
            "syncs": 0,
        }
        for policy in ("none", "batch", "always"):
            root = tmp_path / policy
            root.mkdir()
            engine = DurableSegmentedSealSearch.create(
                method=METHOD,
                wal_path=root / "engine.wal",
                snapshot_path=root / "engine.pkl",
                sync=policy,
                group_size=GROUP_SIZE,
                buffer_capacity=BUFFER_CAP,
            )
            seconds = _timed_inserts(engine, churn_objects)
            engine.close()
            stats[f"wal {policy}"] = {
                "inserts_per_sec": len(churn_objects) / seconds,
                "syncs": engine.wal.syncs,
            }
            if policy == "batch":
                started = time.perf_counter()
                recovered = recover(root / "engine.pkl", root / "engine.wal")
                stats["recover_seconds"] = time.perf_counter() - started
                assert len(recovered) == len(engine)
                recovered.close()
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    ceiling = stats["no wal"]["inserts_per_sec"]
    rows = {
        label: [
            round(row["inserts_per_sec"]),
            f"{row['inserts_per_sec'] / ceiling:.2f}x",
            row["syncs"],
        ]
        for label, row in stats.items()
        if label != "recover_seconds"
    }
    title = (
        f"WAL insert overhead — {METHOD} method, {len(churn_objects)} inserts, "
        f"buffer {BUFFER_CAP}, group size {GROUP_SIZE}; replay of the full log "
        f"took {stats['recover_seconds']:.2f}s"
    )
    emit(format_table(title, "engine", ["inserts/s", "vs no wal", "fsyncs"], rows))
    report_json("bench_wal_overhead.json", title, stats)
    record_trajectory(
        "wal_overhead",
        {
            "no_wal_inserts_per_sec": stats["no wal"]["inserts_per_sec"],
            "wal_batch_inserts_per_sec": stats["wal batch"]["inserts_per_sec"],
            "wal_always_inserts_per_sec": stats["wal always"]["inserts_per_sec"],
            "recover_seconds": stats["recover_seconds"],
        },
        scale={"inserts": len(churn_objects), "group_size": GROUP_SIZE},
    )

    batch_ratio = stats["wal batch"]["inserts_per_sec"] / ceiling
    assert batch_ratio >= BATCH_FLOOR, (
        f"group-commit WAL kept only {batch_ratio:.2f}x of the no-WAL insert "
        f"throughput (floor {BATCH_FLOOR}x)"
    )
