"""Paper-figure and execution-layer benchmarks.

A real package (not a namespace package) so that pytest and the bench
modules agree on one ``benchmarks.conftest`` module instance — the
``emit``/``pytest_terminal_summary`` report queue lives there, and two
instances would silently swallow every report table.
"""
