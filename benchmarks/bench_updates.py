"""Update-churn throughput: segmented engine vs full-rebuild baseline.

Not a paper figure — this isolates the tentpole of the update-subsystem
refactor.  The workload interleaves insert bursts with query rounds on a
live engine, the regime the rebuild-the-world design
(``UpdatableSealSearch``: delta pool + full rebuild past a threshold)
cannot sustain: every rebuild pays a full index build over the whole
corpus, so amortised insert cost is O(n).  The segmented engine seals
fixed-size buffers into immutable segments and compacts them with
size-tiered merges, so each object is rebuilt O(log n) times total.

Both engines are configured with the *same* unindexed-pool bound
(``BUFFER_CAP`` objects): the segmented engine seals its write buffer at
that size, the baseline's ``rebuild_threshold`` is set so its delta pool
rebuilds at that size.  Queries on either engine therefore exact-scan at
most ``BUFFER_CAP`` unindexed objects — equal read amplification — and
the bench isolates what the write paths cost for that same service
level: a full O(n) rebuild per ``BUFFER_CAP`` inserts versus an O(cap)
segment build plus amortised O(log n) merge participation.

Reported per engine:

* **inserts/sec** — churn volume over total time spent in ``insert``
  (the amortised write path, seals/rebuilds included);
* **query ms** — mean wall milliseconds per query *during* churn (the
  segmented engine fans out over several segments; this prices that);
* **rebuilds** — full rebuilds (baseline) vs segment builds + merges
  (segmented).

Scaled by ``REPRO_BENCH_N`` (initial corpus; default 10000) and
``REPRO_BENCH_QUERIES``; churn volume defaults to N/5.  Results print
as a fixed-width table plus a JSON report; set
``REPRO_BENCH_JSON=<dir>`` to also write the JSON to a file (CI uploads
it as the bench artifact).
"""

from __future__ import annotations

import os
import time
import warnings

import pytest

from repro import Query, SegmentedSealSearch
from repro.bench import format_table
from repro.datasets import generate_queries
from repro.extensions.updates import UpdatableSealSearch

from benchmarks.conftest import emit, make_twitter_corpus, record_trajectory, report_json

UPDATES_N = int(os.environ.get("REPRO_BENCH_N", "10000"))
UPDATES_CHURN = int(os.environ.get("REPRO_BENCH_UPDATES_CHURN", str(max(UPDATES_N // 5, 200))))
UPDATES_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "16"))
METHOD = os.environ.get("REPRO_BENCH_UPDATES_METHOD", "token")

#: The shared unindexed-pool bound (segment buffer == baseline delta cap).
BUFFER_CAP = int(os.environ.get("REPRO_BENCH_UPDATES_BUFFER", "256"))

#: Query rounds interleaved with the insert bursts.
ROUNDS = 4


@pytest.fixture(scope="module")
def corpus_and_churn():
    """One generator run, split: first N objects seed the engines, the
    rest arrive as churn (same space, same densities)."""
    objects = make_twitter_corpus(UPDATES_N + UPDATES_CHURN)
    return objects[:UPDATES_N], objects[UPDATES_N:]


@pytest.fixture(scope="module")
def churn_queries(corpus_and_churn):
    initial, _ = corpus_and_churn
    return list(
        generate_queries(
            initial, "small", num_queries=UPDATES_QUERIES, seed=13,
            tau_r=0.2, tau_t=0.2,
        )
    )


def _run_churn(engine, churn, queries):
    """Interleave ROUNDS insert bursts with query rounds; time each side."""
    insert_seconds = 0.0
    query_seconds = 0.0
    queries_run = 0
    burst = max(1, len(churn) // ROUNDS)
    for start in range(0, len(churn), burst):
        chunk = churn[start : start + burst]
        started = time.perf_counter()
        for obj in chunk:
            engine.insert(obj.region, obj.tokens)
        insert_seconds += time.perf_counter() - started
        started = time.perf_counter()
        for query in queries:
            engine.search(query.region, query.tokens, query.tau_r, query.tau_t)
        query_seconds += time.perf_counter() - started
        queries_run += len(queries)
    return {
        "inserts_per_sec": len(churn) / insert_seconds if insert_seconds else 0.0,
        "insert_seconds": insert_seconds,
        "query_ms": 1000.0 * query_seconds / queries_run if queries_run else 0.0,
    }


@pytest.mark.benchmark(group="updates")
def test_update_churn_segmented_vs_rebuild(benchmark, corpus_and_churn, churn_queries):
    initial, churn = corpus_and_churn
    pairs = [(obj.region, obj.tokens) for obj in initial]

    def run():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            rebuild = UpdatableSealSearch(
                pairs, METHOD, rebuild_threshold=BUFFER_CAP / len(pairs)
            )
        segmented = SegmentedSealSearch(pairs, METHOD, buffer_capacity=BUFFER_CAP)

        rebuild_stats = _run_churn(rebuild, churn, churn_queries)
        rebuild_stats["rebuilds"] = rebuild.rebuilds
        segmented_stats = _run_churn(segmented, churn, churn_queries)
        segmented_stats["segments"] = segmented.num_segments

        # Converged engines must agree: flush/compact ends the idf-drift
        # window on both, after which answers are from-scratch exact.
        rebuild.flush()
        segmented.compact()
        probe = churn_queries[0]
        assert rebuild.search(
            probe.region, probe.tokens, probe.tau_r, probe.tau_t
        ).answers == segmented.search(
            probe.region, probe.tokens, probe.tau_r, probe.tau_t
        ).answers

        speedup = (
            segmented_stats["inserts_per_sec"] / rebuild_stats["inserts_per_sec"]
            if rebuild_stats["inserts_per_sec"]
            else 0.0
        )
        return rebuild_stats, segmented_stats, speedup

    rebuild_stats, segmented_stats, speedup = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    title = (
        f"Insert throughput and query latency under churn — {METHOD} method, "
        f"{UPDATES_N} initial objects, {UPDATES_CHURN} inserts, "
        f"{UPDATES_QUERIES} queries × {ROUNDS} rounds, pool bound {BUFFER_CAP}"
    )
    rows = {
        "full rebuild": [
            round(rebuild_stats["inserts_per_sec"]),
            f"{rebuild_stats['query_ms']:.2f}",
            rebuild_stats["rebuilds"],
        ],
        "segmented": [
            round(segmented_stats["inserts_per_sec"]),
            f"{segmented_stats['query_ms']:.2f}",
            segmented_stats["segments"],
        ],
        "speedup": [f"{speedup:.1f}x", "", ""],
    }
    emit(format_table(title, "engine", ["inserts/s", "query ms", "rebuilds/segs"], rows))
    report_json(
        "bench_updates.json",
        title,
        {
            "full_rebuild": rebuild_stats,
            "segmented": segmented_stats,
            "insert_speedup": speedup,
        },
    )
    record_trajectory(
        "updates_churn",
        {
            "rebuild_inserts_per_sec": rebuild_stats["inserts_per_sec"],
            "segmented_inserts_per_sec": segmented_stats["inserts_per_sec"],
            "segmented_query_ms": segmented_stats["query_ms"],
            "insert_speedup": speedup,
        },
        scale={"objects": UPDATES_N, "inserts": UPDATES_CHURN},
    )
