"""Table 1 — data statistics and index sizes.

Reproduces, at bench scale, the paper's Table 1 rows for both datasets:
object count, average region area, entire-space area, average token
count, data size, and the sizes of the IR-tree, TokenInv, GridInv(1024),
HashInv(1024) and HierarchicalInv indexes.  The benchmark rows time index
*construction* (not reported in the paper but useful), while the emitted
table carries the size comparison the paper makes:

    GridInv  <  TokenInv  <  HierarchicalInv  <  HashInv  <  IR-tree-ish

(The IR-tree's blow-up comes from re-indexing every token once per tree
level; HashInv's from the token × cell cross product.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_method
from repro.bench import format_table

from benchmarks.conftest import emit, scaled_granularity

#: Paper granularity 1024, mapped to the bench space (same cell size
#: relative to the data; see conftest.scaled_granularity).
GRID_GRANULARITY = scaled_granularity(1024)

_INDEX_BUILDERS = {
    "IR-tree": lambda objs, w: build_method(objs, "irtree", w),
    "TokenInv": lambda objs, w: build_method(objs, "token", w),
    "GridInv(1024)": lambda objs, w: build_method(
        objs, "grid", w, granularity=GRID_GRANULARITY
    ),
    "HashInv(1024)": lambda objs, w: build_method(
        objs, "hash-hybrid", w, granularity=GRID_GRANULARITY, num_buckets=1 << 20
    ),
    "HierarchicalInv": lambda objs, w: build_method(
        objs, "seal", w, mt=32, max_level=8, min_objects=8
    ),
}

_sizes: dict = {"Twitter": {}, "USA": {}}
_stats: dict = {}


def _data_size_mb(objects) -> float:
    """Raw data footprint: 32-byte rect + UTF-8 tokens per object."""
    total = 0
    for obj in objects:
        total += 32 + sum(len(t.encode()) + 1 for t in obj.tokens)
    return total / 1048576.0


def _collect_stats(name, objects):
    areas = np.array([o.region.area for o in objects])
    tokens = np.array([len(o.tokens) for o in objects])
    space = objects[0].region  # replaced below
    from repro.geometry.rect import mbr_of

    space = mbr_of([o.region for o in objects])
    _stats[name] = {
        "Object number": len(objects),
        "Avg region area (km^2)": round(float(areas.mean()), 2),
        "Entire space (km^2)": round(space.area),
        "Avg token number": round(float(tokens.mean()), 1),
        "Data size (MB)": round(_data_size_mb(objects), 2),
    }


@pytest.mark.parametrize("index_name", list(_INDEX_BUILDERS))
def test_table1_twitter_index_build(benchmark, twitter_corpus, twitter_weighter, index_name):
    build = _INDEX_BUILDERS[index_name]
    method = benchmark.pedantic(
        lambda: build(twitter_corpus, twitter_weighter), rounds=1, iterations=1
    )
    report = method.index_size()
    _sizes["Twitter"][index_name] = report


@pytest.mark.parametrize("index_name", list(_INDEX_BUILDERS))
def test_table1_usa_index_build(benchmark, usa_corpus, usa_weighter, index_name):
    build = _INDEX_BUILDERS[index_name]
    method = benchmark.pedantic(
        lambda: build(usa_corpus, usa_weighter), rounds=1, iterations=1
    )
    report = method.index_size()
    _sizes["USA"][index_name] = report


def test_table1_report(benchmark, twitter_corpus, usa_corpus):
    def build_report():
        _collect_stats("Twitter", twitter_corpus)
        _collect_stats("USA", usa_corpus)
        stat_rows = {
            key: [_stats["Twitter"][key], _stats["USA"][key]] for key in _stats["Twitter"]
        }
        size_rows = {
            index_name: [
                round(_sizes[ds][index_name].total_mb, 2) if index_name in _sizes[ds] else ""
                for ds in ("Twitter", "USA")
            ]
            for index_name in _INDEX_BUILDERS
        }
        posting_rows = {
            index_name: [
                _sizes[ds][index_name].num_postings if index_name in _sizes[ds] else ""
                for ds in ("Twitter", "USA")
            ]
            for index_name in _INDEX_BUILDERS
        }
        return stat_rows, size_rows, posting_rows

    stat_rows, size_rows, posting_rows = benchmark.pedantic(build_report, rounds=1, iterations=1)
    emit(format_table("Table 1a: data statistics", "statistic", ["Twitter", "USA"], stat_rows))
    emit(format_table("Table 1b: index sizes (MB)", "index", ["Twitter", "USA"], size_rows))
    emit(
        format_table(
            "Table 1c: index postings (count)", "index", ["Twitter", "USA"], posting_rows
        )
    )
