#!/usr/bin/env python3
"""Friend recommendation in a location-aware social network.

The paper's second motivating application: "spatio-textual similarity
search helps mobile users find potential friends with common interests
and overlap regions, and thus facilitates users to form various kinds of
circles."  Each member's profile is an ROI; recommending friends for a
member is a similarity query whose query ROI *is their own profile*.

The script indexes a member base once and then answers recommendation
queries for a few members, comparing the SEAL engine against the naive
scan to show identical results at a fraction of the verification work.

Run:
    python examples/friend_recommendation.py
"""

from __future__ import annotations

from repro import Query, SealSearch, build_method
from repro.datasets import generate_twitter
from repro.geometry import Rect

NUM_MEMBERS = 4_000
SEED = 7


def main() -> None:
    print(f"generating {NUM_MEMBERS} member profiles ...")
    members = generate_twitter(
        NUM_MEMBERS,
        seed=SEED,
        space=Rect(0, 0, 400, 400),
        num_clusters=10,
        cluster_spread_fraction=0.03,
    )

    engine = SealSearch(
        ((m.region, m.tokens) for m in members), method="seal", mt=16, max_level=7
    )
    naive = build_method(engine.objects, "naive", engine.weighter)

    # Spatial Jaccard between two user MBRs is harsh (a tiny region
    # nested inside a big one scores near zero), so recommendation walks
    # a threshold schedule from picky to permissive and stops at the
    # first level with enough suggestions — the flexibility the paper's
    # two-threshold query model is designed for.
    schedule = [(0.10, 0.20), (0.05, 0.15), (0.02, 0.10), (0.005, 0.05), (0.001, 0.02)]

    # Demo a few members with non-degenerate active regions.
    demo_members = [m.oid for m in members if m.region.area > 1.0][:3]
    for member_oid in demo_members:
        me = engine.object(member_oid)
        print(f"\nmember {member_oid}: {len(me.tokens)} interests, "
              f"region {me.region.width:.1f}x{me.region.height:.1f} km")
        for tau_r, tau_t in schedule:
            query = Query(region=me.region, tokens=me.tokens, tau_r=tau_r, tau_t=tau_t)
            result = engine.search_query(query)
            suggestions = [oid for oid in result if oid != member_oid]

            # Cross-check against the exhaustive scan (always identical).
            expected = [oid for oid in naive.search(query) if oid != member_oid]
            assert suggestions == expected

            print(f"  tauR={tau_r:<6} tauT={tau_t:<5} -> {len(suggestions)} friends "
                  f"(verified {result.stats.candidates}/{NUM_MEMBERS}, "
                  f"{1000 * result.stats.total_seconds:.2f} ms)")
            if len(suggestions) >= 3:
                ranked = sorted(
                    suggestions,
                    key=lambda oid: engine.similarities(query, oid),
                    reverse=True,
                )
                for oid in ranked[:3]:
                    sim_r, sim_t = engine.similarities(query, oid)
                    common = sorted(me.tokens & engine.object(oid).tokens)[:4]
                    print(f"    suggest member {oid}: simR={sim_r:.3f} simT={sim_t:.3f} "
                          f"shared {common}")
                break


if __name__ == "__main__":
    main()
