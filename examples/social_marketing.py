#!/usr/bin/env python3
"""Location-based social marketing (the paper's first motivating app).

A coffee chain wants to advertise to mobile users whose *profiles* —
active region + interest tags, i.e. ROIs — overlap its store's service
area and match its product keywords (Section 1: "provide
location-specific advertisements to the potential customers who not only
are interested in its products but also have region-based spatial
overlap with its service area").

The script builds a synthetic city of user profiles, indexes them with
SEAL, and runs one campaign query per store, reporting the targeted
audience and how much work the filter saved versus scanning everyone.

Run:
    python examples/social_marketing.py
"""

from __future__ import annotations

import numpy as np

from repro import Rect, SealSearch, tokenize
from repro.datasets import generate_twitter
from repro.datasets.queries import generate_queries  # noqa: F401  (see README pointer)
from repro.geometry.rect import mbr_of

NUM_USERS = 5_000
SEED = 2026

#: Store campaigns: service area centre (as a fraction of the city
#: extent), service radius in km, and ad copy.
CAMPAIGNS = [
    ("Downtown flagship", (0.5, 0.5), 8.0, "starbucks mocha coffee ice"),
    ("Airport kiosk", (0.15, 0.8), 5.0, "coffee tea food travel"),
    ("Campus pop-up", (0.75, 0.25), 3.0, "coffee music gaming books"),
]

#: Weighted Jaccard between a 4-keyword ad and ~14-tag profiles tops out
#: well below 0.2, so campaign thresholds are correspondingly low: we
#: require *some* regional overlap and a meaningful interest match.
TAU_R, TAU_T = 0.01, 0.03


def main() -> None:
    print(f"generating {NUM_USERS} user profiles ...")
    users = generate_twitter(
        NUM_USERS,
        seed=SEED,
        space=Rect(0, 0, 200, 200),      # one metro area, 200x200 km
        num_clusters=12,                  # neighbourhoods
        cluster_spread_fraction=0.05,
    )
    city = mbr_of([u.region for u in users])

    engine = SealSearch(
        ((u.region, u.tokens) for u in users),
        method="seal",
        mt=16,
        max_level=7,
    )

    rng = np.random.default_rng(SEED)
    for name, (fx, fy), radius_km, copy in CAMPAIGNS:
        cx = city.x1 + fx * city.width
        cy = city.y1 + fy * city.height
        service_area = Rect.from_center(cx, cy, 2 * radius_km, 2 * radius_km)
        keywords = tokenize(copy)

        result = engine.search(service_area, keywords, tau_r=TAU_R, tau_t=TAU_T)

        stats = result.stats
        scanned_fraction = stats.candidates / len(engine)
        print(f"\ncampaign: {name}")
        print(f"  service area {radius_km} km radius at ({cx:.0f}, {cy:.0f}) km")
        print(f"  keywords: {sorted(keywords)}")
        print(f"  audience: {len(result)} users")
        print(
            f"  filter verified only {stats.candidates}/{len(engine)} profiles "
            f"({100 * scanned_fraction:.1f}% of the corpus) "
            f"in {1000 * stats.total_seconds:.2f} ms"
        )
        for oid in result.answers[:5]:
            user = engine.object(oid)
            shared = sorted(user.tokens & keywords)
            print(f"    user {oid}: shares {shared}")
        if len(result) > 5:
            print(f"    ... and {len(result) - 5} more")


if __name__ == "__main__":
    main()
