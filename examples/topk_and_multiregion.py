#!/usr/bin/env python3
"""Extensions tour: top-k ranking, alternative predicates, multi-region ROIs.

Three beyond-paper features on one small scenario:

1. **Top-k** — "give me the 5 most similar profiles" instead of guessing
   thresholds (threshold descent over the SEAL index; exact).
2. **Dice predicate** — the same engine machinery under a different
   textual similarity (paper Section 7's extension direction).
3. **Multi-region ROIs** — users with home *and* work neighbourhoods,
   clustered from raw points (paper Section 6.1's future work).

Run:
    python examples/topk_and_multiregion.py
"""

from __future__ import annotations

import numpy as np

from repro import Query, Rect, TokenWeighter, build_method, make_corpus
from repro.datasets import generate_twitter
from repro.extensions import (
    DicePredicate,
    MultiRegionObject,
    PredicateSearch,
    cluster_points_to_regions,
    multi_region_search,
    top_k_search,
)

SEED = 99


def demo_topk() -> None:
    print("== top-k search ==")
    base = generate_twitter(
        2000, seed=SEED, space=Rect(0, 0, 300, 300), num_clusters=8,
        cluster_spread_fraction=0.04,
    )
    # Plant a family of near-duplicate profiles (same chain's franchises):
    # when strong matches exist, the threshold descent stops early; with
    # only weak matches it degrades to one exhaustive scan — still exact.
    anchor = base[123]
    rng = np.random.default_rng(SEED)
    pairs = [(o.region, o.tokens) for o in base]
    for _ in range(6):
        jitter = float(rng.normal(0, 0.4))
        pairs.append((anchor.region.translate(jitter, -jitter), anchor.tokens))
    objects = make_corpus(pairs)

    seal = build_method(objects, "seal", mt=16, max_level=7)
    result = top_k_search(seal, anchor.region, anchor.tokens, k=5, beta=0.5)
    print(f"query = profile of object {anchor.oid}; "
          f"descent stopped after levels {result.levels_searched}, "
          f"scored only {result.verified} of {len(objects)} objects")
    for rank, (oid, score, sim_r, sim_t) in enumerate(result.ranking, 1):
        print(f"  #{rank}: object {oid} score={score:.3f} (simR={sim_r:.3f}, simT={sim_t:.3f})")


def demo_dice() -> None:
    print("\n== Dice textual predicate ==")
    objects = make_corpus(
        [
            (Rect(0, 0, 10, 10), {"coffee", "mocha", "espresso"}),
            (Rect(1, 1, 11, 11), {"coffee", "mocha", "espresso", "tea", "matcha", "scones"}),
            (Rect(2, 2, 12, 12), {"sports", "news"}),
        ]
    )
    weighter = TokenWeighter(o.tokens for o in objects)
    from repro.extensions import JaccardPredicate

    query = Query(Rect(0, 0, 10, 10), frozenset({"coffee", "mocha", "espresso"}), 0.3, 0.4)
    for predicate in (JaccardPredicate(weighter), DicePredicate(weighter)):
        engine = PredicateSearch(objects, predicate, weighter)
        answers = engine.search(query).answers
        sim1 = predicate.similarity(query.tokens, objects[1].tokens)
        print(f"  {predicate.name:8s} tau_t=0.4 -> answers {answers} "
              f"(object 1 scores {sim1:.2f})")
    print("  Dice forgives object 1's extra tokens; Jaccard does not.")


def demo_multiregion() -> None:
    print("\n== multi-region ROIs ==")
    rng = np.random.default_rng(SEED)

    def commuter(oid, home, work, tags):
        points = [
            (home[0] + rng.normal(0, 0.5), home[1] + rng.normal(0, 0.5)) for _ in range(15)
        ] + [
            (work[0] + rng.normal(0, 0.3), work[1] + rng.normal(0, 0.3)) for _ in range(10)
        ]
        regions = cluster_points_to_regions(points, max_regions=2, seed=oid)
        return MultiRegionObject(oid, regions, frozenset(tags))

    users = [
        commuter(0, (5, 5), (60, 60), {"coffee", "cycling"}),
        commuter(1, (8, 4), (58, 62), {"coffee", "books"}),
        commuter(2, (90, 10), (92, 12), {"coffee", "books"}),
    ]
    for user in users:
        shapes = ", ".join(f"{r.width:.1f}x{r.height:.1f}@({r.center[0]:.0f},{r.center[1]:.0f})"
                           for r in user.regions)
        print(f"  user {user.oid}: regions [{shapes}] tags {sorted(user.tokens)}")

    downtown = Rect(55, 55, 65, 65)  # around the work cluster only
    answers = multi_region_search(users, [downtown], {"coffee", "books"}, tau_r=0.003, tau_t=0.2)
    print(f"  downtown coffee+books query matches users {answers} "
          "(user 2 lives and works across town)")

    # The precision argument for multi-region ROIs: a single-MBR model
    # smears each commuter over the whole home-work bounding box, so a
    # query in the empty countryside *between* home and work would match.
    midway = Rect(28, 28, 38, 38)
    multi = multi_region_search(users, [midway], {"coffee"}, tau_r=0.003, tau_t=0.1)
    single_mbr_hits = [
        u.oid
        for u in users
        if Rect(
            min(r.x1 for r in u.regions), min(r.y1 for r in u.regions),
            max(r.x2 for r in u.regions), max(r.y2 for r in u.regions),
        ).intersection_area(midway) / midway.area > 0.9
    ]
    print(f"  mid-commute query: multi-region matches {multi}, while the "
          f"single-MBR model would have matched users {single_mbr_hits} "
          "whose box merely spans the commute")


if __name__ == "__main__":
    demo_topk()
    demo_dice()
    demo_multiregion()
