#!/usr/bin/env python3
"""Wildlife habitat search (the paper's third motivating application).

"Wild species have their habitats (e.g., Yellowstone National Park for
grizzly bears) and features (e.g., mammal, omnivore).  A zoologist can
issue a query to find all wild species having certain features and
inhabiting in a specific region."

The script builds a small curated species catalogue (habitat MBRs in a
stylised park system + trait token sets), indexes it, and answers a few
zoologist queries.  It demonstrates the engine on *hand-authored* data —
no generators — including threshold tuning per query.

Run:
    python examples/wildlife.py
"""

from __future__ import annotations

from repro import Rect, SealSearch

# A stylised 1000x1000 km wilderness.  Habitats are MBRs; traits are
# token sets.  (Coordinates in km.)
SPECIES = {
    "grizzly bear": (Rect(100, 600, 420, 900), {"mammal", "omnivore", "forest", "solitary"}),
    "black bear": (Rect(150, 550, 500, 880), {"mammal", "omnivore", "forest"}),
    "gray wolf": (Rect(80, 580, 460, 940), {"mammal", "carnivore", "pack", "forest"}),
    "elk": (Rect(120, 500, 520, 860), {"mammal", "herbivore", "herd", "meadow"}),
    "bison": (Rect(300, 400, 700, 700), {"mammal", "herbivore", "herd", "grassland"}),
    "pronghorn": (Rect(420, 350, 800, 640), {"mammal", "herbivore", "grassland", "fast"}),
    "bald eagle": (Rect(50, 300, 950, 950), {"bird", "carnivore", "raptor", "river"}),
    "osprey": (Rect(100, 250, 900, 900), {"bird", "carnivore", "raptor", "river", "fish"}),
    "cutthroat trout": (Rect(200, 450, 650, 800), {"fish", "river", "coldwater"}),
    "beaver": (Rect(180, 420, 600, 820), {"mammal", "herbivore", "river", "dam"}),
    "moose": (Rect(60, 650, 380, 980), {"mammal", "herbivore", "solitary", "wetland"}),
    "river otter": (Rect(220, 430, 620, 790), {"mammal", "carnivore", "river", "playful"}),
}

QUERIES = [
    # (description, region, traits, tau_r, tau_t)
    ("large mammals around the northern forests",
     Rect(100, 550, 500, 950), {"mammal", "forest"}, 0.3, 0.25),
    ("river hunters in the central drainage",
     Rect(150, 400, 700, 850), {"carnivore", "river"}, 0.3, 0.3),
    ("grassland grazers in the south-east plains",
     Rect(350, 350, 820, 700), {"herbivore", "grassland", "herd"}, 0.3, 0.3),
]


def main() -> None:
    names = list(SPECIES)
    engine = SealSearch(
        (SPECIES[name] for name in names), method="seal", mt=8, max_level=5,
        min_objects=0,
    )

    for description, region, traits, tau_r, tau_t in QUERIES:
        result = engine.search(region, traits, tau_r=tau_r, tau_t=tau_t)
        print(f"\nquery: {description}")
        print(f"  region {region.as_tuple()}, traits {sorted(traits)}, "
              f"tauR={tau_r}, tauT={tau_t}")
        if not result.answers:
            print("  no species matched — relax a threshold")
        for oid in result:
            print(f"  - {names[oid]} ({', '.join(sorted(SPECIES[names[oid]][1]))})")

    # Threshold tuning: the same region/traits with a stricter spatial
    # threshold narrows to species whose ranges *concentrate* there.
    print("\nthreshold tuning on the first query:")
    for tau_r in (0.1, 0.3, 0.5, 0.7):
        result = engine.search(QUERIES[0][1], QUERIES[0][2], tau_r=tau_r, tau_t=0.25)
        print(f"  tauR={tau_r}: {[names[oid] for oid in result]}")


if __name__ == "__main__":
    main()
