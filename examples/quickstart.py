#!/usr/bin/env python3
"""Quickstart: index a handful of ROIs and run one similarity query.

This walks the paper's running example (Figure 1): seven objects with
regions and token sets, and the query q = (Rq, {mocha, coffee,
starbucks}, τR = 0.25, τT = 0.3) whose answer is exactly {o2}.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Query, Rect, SealSearch

# Figure 1's objects, with the paper's token names spelled out:
# t1=mocha, t2=coffee, t3=starbucks, t4=ice, t5=tea.
OBJECTS = [
    (Rect(10, 30, 60, 90), {"mocha", "coffee"}),                 # o1
    (Rect(15, 20, 85, 45), {"mocha", "coffee", "starbucks"}),    # o2
    (Rect(10, 95, 40, 115), {"starbucks", "ice", "tea"}),        # o3
    (Rect(85, 90, 115, 115), {"coffee", "starbucks", "tea"}),    # o4
    (Rect(55, 25, 85, 55), {"mocha", "coffee", "tea"}),          # o5
    (Rect(90, 35, 115, 70), {"coffee", "ice"}),                  # o6
    (Rect(60, 98, 75, 108), {"tea"}),                            # o7
]


def main() -> None:
    # Build the engine.  "seal" is the paper's best method (hierarchical
    # hybrid signatures); try method="token", "grid", "hash-hybrid", or
    # any baseline ("naive", "keyword-first", "spatial-first", "irtree")
    # — they all return identical answers.
    engine = SealSearch(OBJECTS, method="seal", mt=8, max_level=4, min_objects=0)

    # The query: a coffee-shop advertiser's service area and products.
    query = Query(
        region=Rect(35, 10, 75, 70),
        tokens=frozenset({"mocha", "coffee", "starbucks"}),
        tau_r=0.25,   # at least 25% spatial Jaccard overlap
        tau_t=0.30,   # at least 30% weighted textual Jaccard
    )
    result = engine.search_query(query)

    print(f"answers: {result.answers}")
    for oid in result:
        obj = engine.object(oid)
        sim_r, sim_t = engine.similarities(query, oid)
        print(
            f"  o{oid + 1}: region={obj.region.as_tuple()} tokens={sorted(obj.tokens)} "
            f"simR={sim_r:.2f} simT={sim_t:.2f}"
        )

    stats = result.stats
    print(
        f"filter probed {stats.lists_probed} lists, retrieved "
        f"{stats.entries_retrieved} postings, verified {stats.candidates} "
        f"candidates -> {stats.results} answers"
    )

    assert result.answers == [1], "Figure 1's answer is o2"
    print("matches the paper's Example 1: the answer is exactly {o2}")


if __name__ == "__main__":
    main()
